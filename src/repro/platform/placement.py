"""Placement as a first-class control plane.

Before this module, shard ownership was frozen at construction time:
``ConsistentHashRing(n_shards)`` was instantiated independently inside the
sharded service, the cluster front door and the bench oracle, and each
layer memoized placements under its own private lock.  Nothing could ever
*move* a channel, because no layer owned a mutable notion of "who serves
what".

:class:`PlacementMap` makes that notion explicit: a versioned
``{channel → shard}`` assignment with a monotonically increasing ``epoch``.
At epoch 0 it delegates to the same :class:`ConsistentHashRing` the layers
used before, so routing is byte-identical for existing deployments — no
migration needed, ``repro recover`` still resumes pre-refactor checkpoints
(pinned by ``tests/test_placement.py``).  Every mutation — pinning a channel
to a new shard after a migration, swapping the ring during a reshard — bumps
the epoch and invalidates the built-in placement memo, which is the
``_placements``/``_placements_lock`` pattern that previously lived
per-layer, now shared by every router consulting the same map.

The control-plane/data-plane split:

* **control plane** (this module): who owns which channel, at which epoch.
  Pure bookkeeping, serializable through :mod:`repro.platform.codecs`
  strict-JSON, pushed to cluster workers over ``POST /placement``.
* **data plane** (``sharding.migrate_channel`` / ``cluster.reshard``):
  actually moving a channel's rows and live-session checkpoint between
  stores, then committing the new ownership here.

A router holding a stale map learns about it through
:class:`WrongShardError` — the ``409`` wire error a worker returns for a
channel it no longer (or does not yet) own — refreshes its map and retries.
See ``docs/resharding.md`` for the full protocol.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from dataclasses import dataclass
from typing import Iterable

from repro.utils.validation import ValidationError, require_positive

__all__ = [
    "ChannelMove",
    "ConsistentHashRing",
    "PlacementMap",
    "WrongShardError",
]


def _point(key: str) -> int:
    """A stable 64-bit ring coordinate for ``key`` (process-independent)."""
    digest = hashlib.md5(key.encode("utf-8"), usedforsecurity=False).digest()
    return int.from_bytes(digest[:8], "big")


class ConsistentHashRing:
    """Maps string keys onto ``n_shards`` buckets via consistent hashing.

    Each shard contributes ``replicas`` virtual nodes; a key belongs to the
    first virtual node clockwise from its own ring coordinate.  The ring is
    immutable — elasticity lives in :class:`PlacementMap`, which swaps whole
    rings and pins individual channels on top.
    """

    def __init__(self, n_shards: int, replicas: int = 64) -> None:
        require_positive(n_shards, "n_shards")
        require_positive(replicas, "replicas")
        self.n_shards = n_shards
        self.replicas = replicas
        points = [
            (_point(f"shard-{shard}#{replica}"), shard)
            for shard in range(n_shards)
            for replica in range(replicas)
        ]
        points.sort()
        self._points = [point for point, _ in points]
        self._shards = [shard for _, shard in points]

    def shard_for(self, key: str) -> int:
        """The shard index owning ``key``."""
        index = bisect.bisect_right(self._points, _point(key))
        if index == len(self._points):
            index = 0
        return self._shards[index]


class WrongShardError(ValidationError):
    """A request reached a shard that does not own the channel.

    The wire form is a ``409 Conflict``: the worker answers with its current
    placement ``epoch`` so the caller knows whether its map is stale (refresh
    and retry) or the channel is mid-migration (``in_flight`` — retry after
    the migration commits a new epoch).  The bounded retry loop lives in
    :meth:`repro.platform.cluster.ClusterFrontDoor._call`.
    """

    def __init__(
        self,
        video_id: str,
        *,
        owner: int | None = None,
        epoch: int = 0,
        in_flight: bool = False,
    ) -> None:
        self.video_id = video_id
        self.owner = owner
        self.epoch = epoch
        self.in_flight = in_flight
        if in_flight:
            detail = "is mid-migration"
        elif owner is not None:
            detail = f"belongs to shard {owner}"
        else:
            detail = "is not owned here"
        super().__init__(
            f"channel {video_id!r} {detail} at placement epoch {epoch}; "
            "refresh the placement map and retry"
        )


@dataclass(frozen=True)
class ChannelMove:
    """One planned migration: ``video_id`` goes from shard ``src`` to ``dst``."""

    video_id: str
    src: int
    dst: int


class PlacementMap:
    """Versioned, mutable ``{channel → shard}`` assignment shared by routers.

    Default placement is the consistent-hash ring — at epoch 0 the map
    routes byte-identically to a bare :class:`ConsistentHashRing` of the
    same size, which is what keeps existing databases valid without any
    migration.  On top of the ring sit *pins*: per-channel overrides written
    by completed migrations.  ``in_flight`` marks channels currently being
    moved — cluster workers answer ``409`` for them until the migration
    commits.

    Every mutation bumps ``epoch`` (strictly monotonic) and clears the
    built-in placement memo, so all routers sharing this object — the
    sharded service, every front-door clone, the gateway — observe the new
    assignment on their next lookup.  All state is guarded by one internal
    lock; the lock is only ever held for dict/ring lookups, never for
    storage calls, so routing never queues behind shard work.
    """

    def __init__(
        self,
        n_shards: int,
        replicas: int = 64,
        *,
        epoch: int = 0,
        pins: dict[str, int] | None = None,
        in_flight: Iterable[str] | None = None,
        frozen: bool = False,
    ) -> None:
        if epoch < 0:
            raise ValidationError(f"epoch must be >= 0, got {epoch!r}")
        for video_id, shard in (pins or {}).items():
            if int(shard) < 0:
                raise ValidationError(
                    f"pin for channel {video_id!r} names invalid shard {shard!r}"
                )
        self._lock = threading.Lock()
        self._ring = ConsistentHashRing(n_shards, replicas=replicas)  # guarded-by: _lock
        self._epoch = int(epoch)  # guarded-by: _lock
        self._pins = {k: int(v) for k, v in (pins or {}).items()}  # guarded-by: _lock
        self._in_flight = set(in_flight or ())  # guarded-by: _lock
        self._frozen = bool(frozen)  # guarded-by: _lock
        # Memoized placements (the per-layer ``_placements`` cache of PR 9,
        # now owned by the shared map so epoch bumps invalidate every
        # router at once).  Pure recomputation: a full cache is dropped
        # rather than LRU-tracked to keep the hot path allocation-free.
        self._placements: dict[str, int] = {}  # guarded-by: _lock
        self._placements_max = 4096

    # ------------------------------------------------------------------ reads
    @property
    def epoch(self) -> int:
        """The current placement version (bumped by every mutation)."""
        with self._lock:
            return self._epoch

    @property
    def n_shards(self) -> int:
        """Number of shards on the current ring."""
        with self._lock:
            return self._ring.n_shards

    @property
    def replicas(self) -> int:
        """Virtual nodes per shard on the ring."""
        with self._lock:
            return self._ring.replicas

    def shard_for(self, video_id: str) -> int:
        """The shard that owns ``video_id`` (pin override, else ring)."""
        with self._lock:
            index = self._placements.get(video_id)
            if index is None:
                index = self._pins.get(video_id)
                if index is None:
                    index = self._ring.shard_for(video_id)
                if len(self._placements) >= self._placements_max:
                    self._placements.clear()
                self._placements[video_id] = index
            return index

    def is_in_flight(self, video_id: str) -> bool:
        """Whether ``video_id`` is currently being migrated."""
        with self._lock:
            return video_id in self._in_flight

    @property
    def frozen(self) -> bool:
        """Whether the map is in its reshard commit barrier.

        While frozen, cluster workers answer ``409`` for *every*
        channel-addressed request, so no channel can appear on (or be
        written to) any shard between the supervisor's final channel
        census and :meth:`commit_reshard`.  Callers just retry; the
        barrier lasts for one listing sweep plus any straggler
        migrations — milliseconds, not the bulk migration phase.
        """
        with self._lock:
            return self._frozen

    def describe(self) -> dict:
        """One atomic plain-JSON view of the whole assignment.

        The body of the strict-JSON codec pair
        (:func:`repro.platform.codecs.placement_map_to_dict`).
        """
        with self._lock:
            return {
                "epoch": self._epoch,
                "n_shards": self._ring.n_shards,
                "replicas": self._ring.replicas,
                "pins": dict(sorted(self._pins.items())),
                "in_flight": sorted(self._in_flight),
                "frozen": self._frozen,
            }

    # -------------------------------------------------------------- mutations
    def _bump(self) -> int:
        """Advance the epoch and drop every memoized placement (lock held)."""
        self._epoch += 1  # lintor: disable=R002 reason=every caller holds _lock
        self._placements.clear()  # lintor: disable=R002 reason=every caller holds _lock
        return self._epoch  # lintor: disable=R002 reason=every caller holds _lock

    def begin_migration(self, video_id: str) -> int:
        """Mark ``video_id`` as mid-migration; returns the new epoch.

        While in flight, cluster workers answer ``409`` for the channel on
        both the old and the new shard — the per-channel unavailability
        window the reshard report measures.
        """
        with self._lock:
            if video_id in self._in_flight:
                raise ValidationError(f"channel {video_id!r} is already mid-migration")
            self._in_flight.add(video_id)
            return self._bump()

    def complete_migration(self, video_id: str, dst_shard: int) -> int:
        """Commit ``video_id``'s new home; returns the new epoch.

        The pin is dropped when it agrees with the ring (so a reshard that
        moved every changed channel ends with an empty pin set), kept as an
        override otherwise.  ``dst_shard`` may exceed the ring size during a
        grow — the ring is swapped only at :meth:`commit_reshard`.
        """
        if dst_shard < 0:
            raise ValidationError(f"dst_shard must be >= 0, got {dst_shard!r}")
        with self._lock:
            self._in_flight.discard(video_id)
            if (
                dst_shard < self._ring.n_shards
                and self._ring.shard_for(video_id) == dst_shard
            ):
                self._pins.pop(video_id, None)
            else:
                self._pins[video_id] = dst_shard
            return self._bump()

    def abort_migration(self, video_id: str) -> int:
        """Clear the in-flight mark without moving the channel."""
        with self._lock:
            self._in_flight.discard(video_id)
            return self._bump()

    def freeze(self) -> int:
        """Enter the reshard commit barrier; returns the new epoch.

        Pushed to every worker *before* the supervisor's final channel
        census: once a worker installs a frozen map, no channel-addressed
        request can create or mutate state on it, so the census is
        complete — a channel either finished creation before the freeze
        (and is listed) or its creation is answered ``409`` and retried by
        the front door after :meth:`commit_reshard` thaws the map.
        """
        with self._lock:
            if self._frozen:
                raise ValidationError("placement map is already frozen")
            self._frozen = True
            return self._bump()

    def thaw(self) -> int:
        """Leave the commit barrier without committing (abort path)."""
        with self._lock:
            if not self._frozen:
                raise ValidationError("placement map is not frozen")
            self._frozen = False
            return self._bump()

    def plan_reshard(
        self, channels: Iterable[str], new_n_shards: int
    ) -> list[ChannelMove]:
        """The minimal move set taking ``channels`` onto a ``new_n_shards`` ring.

        Only channels whose owner differs between the current assignment
        (pins included) and a fresh ring of the new size appear in the plan
        — consistent hashing keeps that to ~``1/N`` of the keys on a grow.
        The plan is sorted by video id so reshards are deterministic.
        """
        require_positive(new_n_shards, "new_n_shards")
        with self._lock:
            new_ring = ConsistentHashRing(new_n_shards, replicas=self._ring.replicas)
            moves = []
            for video_id in sorted(set(channels)):
                src = self._pins.get(video_id)
                if src is None:
                    src = self._ring.shard_for(video_id)
                dst = new_ring.shard_for(video_id)
                if src != dst:
                    moves.append(ChannelMove(video_id=video_id, src=src, dst=dst))
            return moves

    def commit_reshard(self, new_n_shards: int) -> int:
        """Swap the ring to ``new_n_shards`` after the plan's moves completed.

        Pins that now agree with the new ring evaporate (the normal end
        state of a full reshard); a leftover pin naming a shard beyond the
        new ring is a data-plane bug — it would route a channel to a worker
        that no longer exists — and is rejected.
        """
        require_positive(new_n_shards, "new_n_shards")
        with self._lock:
            new_ring = ConsistentHashRing(new_n_shards, replicas=self._ring.replicas)
            for video_id, shard in list(self._pins.items()):
                if shard >= new_n_shards:
                    raise ValidationError(
                        f"channel {video_id!r} is pinned to shard {shard}, beyond the "
                        f"new {new_n_shards}-shard ring — its migration never completed"
                    )
                if new_ring.shard_for(video_id) == shard:
                    del self._pins[video_id]
            self._ring = new_ring
            self._frozen = False
            return self._bump()

    def install(self, other: "PlacementMap") -> bool:
        """Adopt ``other``'s assignment in place if it is newer.

        The cross-process refresh path: a front door or worker holding this
        map swaps in the state pushed/fetched over the wire.  In-place so
        every clone sharing the object sees the update; returns whether
        anything changed (``other`` at the same or an older epoch is a
        no-op, which makes refresh races harmless).
        """
        state = other.describe()
        with self._lock:
            if state["epoch"] <= self._epoch:
                return False
            if (
                state["n_shards"] != self._ring.n_shards
                or state["replicas"] != self._ring.replicas
            ):
                self._ring = ConsistentHashRing(
                    state["n_shards"], replicas=state["replicas"]
                )
            self._epoch = state["epoch"]
            self._pins = {k: int(v) for k, v in state["pins"].items()}
            self._in_flight = set(state["in_flight"])
            self._frozen = bool(state.get("frozen", False))
            self._placements.clear()
            return True
