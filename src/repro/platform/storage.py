"""Backwards-compatible aliases for the storage layer.

The store grew into a pluggable backend package
(:mod:`repro.platform.backends`): the contract lives in
:class:`~repro.platform.backends.base.StorageBackend`, the in-memory
reference implementation in
:class:`~repro.platform.backends.memory.InMemoryStore` and the durable
SQLite backend in :class:`~repro.platform.backends.sqlite.SQLiteStore`.
This module keeps the original import path working.
"""

from __future__ import annotations

from repro.platform.backends import (
    HighlightRecord,
    InMemoryStore,
    SQLiteStore,
    StorageBackend,
    create_backend,
)

__all__ = [
    "HighlightRecord",
    "InMemoryStore",
    "SQLiteStore",
    "StorageBackend",
    "create_backend",
]
