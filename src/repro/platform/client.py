"""Thin blocking HTTP client for the LIGHTOR gateway.

:class:`LightorClient` mirrors the call surface of
:class:`~repro.platform.sharding.ShardedLightorService` method for method,
so callers written against the in-process front door — the load-generation
driver above all — can be pointed at a network gateway by swapping the
object, nothing else.  Payloads are the round-trip-exact codec forms from
:mod:`repro.platform.codecs`; what comes back out of a client is the same
value objects (``RedDot``, ``StreamEvent``, …) the in-process service
returns, byte-identical through the wire.

Error mapping inverts the gateway's: a ``400`` becomes the
:class:`~repro.utils.validation.ValidationError` the service raised on the
far side (same message, same type — callers keep their ``except`` clauses),
a ``503`` becomes :class:`GatewayOverloadedError` (retry later; the gateway
is applying backpressure or draining), anything else
:class:`GatewayError`.

Built on stdlib :mod:`http.client` with one kept-alive connection per
client instance; instances are **not** thread-safe — give each worker
thread its own client, exactly like each worker owns its own latency
recorder in the load harness.
"""

from __future__ import annotations

import http.client
import json
from typing import Sequence
from urllib.parse import quote

from repro.core.types import ChatMessage, Highlight, Interaction, RedDot, Video
from repro.platform import codecs, wire
from repro.platform.backends.base import HighlightRecord
from repro.platform.placement import WrongShardError
from repro.streaming.events import StreamEvent
from repro.utils.validation import ValidationError

__all__ = [
    "GatewayError",
    "GatewayOverloadedError",
    "GatewayTimeoutError",
    "LightorClient",
]


class GatewayError(RuntimeError):
    """The gateway answered with an unexpected error status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"gateway returned {status}: {message}")
        self.status = status


class GatewayOverloadedError(GatewayError):
    """The gateway refused admission (overloaded or draining) — retry later."""


class GatewayTimeoutError(GatewayError):
    """The gateway did not answer within the client's timeout.

    A hung or half-dead shard must surface as a typed, catchable error, not
    block the caller forever (the pre-timeout behaviour) and not masquerade
    as a retryable connection hiccup: the request may have been *received*
    and be executing slowly, so the client never replays it — the caller
    decides, exactly like the non-idempotent-retry rule in
    :meth:`LightorClient._request`.
    """

    def __init__(self, host: str, port: int, timeout: float) -> None:
        super().__init__(504, f"no response from {host}:{port} within {timeout:g}s")
        self.host = host
        self.port = port
        self.timeout = timeout


class LightorClient:
    """Call a :class:`~repro.platform.server.LightorGateway` over HTTP.

    ``wire_codec`` picks the request/response encoding: ``"json"`` (the
    default — interoperates with any gateway version) or ``"binary"`` (the
    framed codec of :mod:`repro.platform.wire`, negotiated via
    ``Content-Type``/``Accept``; decodes to identical value trees, so
    callers see no difference beyond bytes on the wire).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        timeout: float = 60.0,
        *,
        wire_codec: str = "json",
    ) -> None:
        if wire_codec not in wire.WIRE_CODECS:
            raise ValidationError(
                f"unknown wire codec {wire_codec!r} (expected one of {wire.WIRE_CODECS})"
            )
        self.host = host
        self.port = port
        self.timeout = timeout
        self.wire_codec = wire_codec
        self._connection: http.client.HTTPConnection | None = None

    # -------------------------------------------------------------- transport
    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection

    def _drop_connection(self) -> None:
        # Detach before closing: if close() itself raises (a socket already
        # reset under us), the stale connection must not stay cached — that
        # is exactly the fd leak the retry path used to hit.
        connection, self._connection = self._connection, None
        if connection is not None:
            try:
                connection.close()
            except OSError:
                pass

    @staticmethod
    def _decode_response(data: bytes, content_type: str) -> dict | str:
        """The one chokepoint where raw response bytes become objects.

        Binary frames go through :func:`wire.decode_frame`, which rejects
        bad magic, unknown versions and unknown flags; JSON bodies decode
        here and are validated by the caller against the status code.
        """
        if wire.WIRE_CONTENT_TYPE in content_type:
            return wire.decode_frame(data)
        if "json" in content_type:
            return json.loads(data.decode("utf-8"))
        return data.decode("utf-8")

    def _request(self, method: str, path: str, payload: dict | None = None):
        if self.wire_codec == "binary":
            body = None if payload is None else wire.encode_frame(payload)
            headers = {"Accept": wire.WIRE_CONTENT_TYPE}
            if body is not None:
                headers["Content-Type"] = wire.WIRE_CONTENT_TYPE
        else:
            body = None if payload is None else json.dumps(payload, allow_nan=False).encode("utf-8")
            headers = {"Accept": "application/json"}
            if body is not None:
                headers["Content-Type"] = "application/json"
        # One retry on a stale kept-alive connection (the server side may
        # have closed it between calls) — but only for GETs: a POST whose
        # response was lost may already have *executed* on the far side
        # (an ingest batch, an end_live), and blindly replaying it would
        # double-apply the call and silently diverge the persisted state.
        # Non-idempotent failures propagate for the caller to decide.
        retries = (0, 1) if method == "GET" else (1,)
        for attempt in retries:
            connection = self._connect()
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                data = response.read()
                break
            except TimeoutError as error:
                # TimeoutError is an OSError subclass — catch it first.  A
                # timed-out request may be executing slowly on the far side,
                # so it is never retried (even a GET: the point is to bound
                # the caller's wait, not to double it).
                self._drop_connection()
                raise GatewayTimeoutError(self.host, self.port, self.timeout) from error
            except (http.client.HTTPException, ConnectionError, OSError):
                self._drop_connection()
                if attempt:
                    raise
        status = response.status
        content_type = (response.getheader("Content-Type") or "").lower()
        decoded = self._decode_response(data, content_type)
        if status == 200:
            return decoded
        message = decoded.get("error", "") if isinstance(decoded, dict) else str(decoded)
        if status == 400:
            raise ValidationError(message)
        if status == 409 and isinstance(decoded, dict) and "video_id" in decoded:
            # The shard refused a channel it does not own (or one that is
            # mid-migration): surface the typed redirect so routing layers
            # can refresh their placement map and retry transparently.
            raise WrongShardError(
                decoded["video_id"],
                owner=decoded.get("owner"),
                epoch=int(decoded.get("epoch", 0)),
                in_flight=bool(decoded.get("in_flight", False)),
            )
        if status == 503:
            raise GatewayOverloadedError(status, message)
        raise GatewayError(status, message)

    @staticmethod
    def _video_path(video_id: str, leaf: str) -> str:
        return f"/videos/{quote(video_id, safe='')}/{leaf}"

    @staticmethod
    def _live_path(video_id: str, leaf: str) -> str:
        return f"/live/{quote(video_id, safe='')}/{leaf}"

    @staticmethod
    def _decode_events(payload: dict) -> list[StreamEvent]:
        return [codecs.stream_event_from_dict(item) for item in payload["events"]]

    @staticmethod
    def _decode_dots(payload: dict) -> list[RedDot]:
        return [codecs.red_dot_from_dict(item) for item in payload["red_dots"]]

    # ---------------------------------------------------------- batch surface
    def register_video(self, video: Video) -> None:
        """Store video metadata on its home shard (no live session opened)."""
        self._request("POST", "/videos", codecs.video_to_dict(video))

    def request_red_dots(self, video_id: str, k: int | None = None) -> list[RedDot]:
        """Red dots for a recorded video, served by its home shard."""
        path = self._video_path(video_id, "red-dots")
        if k is not None:
            path += f"?k={int(k)}"
        return self._decode_dots(self._request("GET", path))

    def log_interactions(self, video_id: str, interactions: Sequence[Interaction]) -> int:
        """Persist viewer interactions on the video's home shard."""
        payload = {"interactions": [codecs.interaction_to_dict(i) for i in interactions]}
        return self._request("POST", self._video_path(video_id, "interactions"), payload)["total"]

    def refine_video(self, video_id: str) -> int:
        """Run one Extractor refinement pass on the video's home shard."""
        return self._request("POST", self._video_path(video_id, "refine"), {})["updated"]

    # --------------------------------------------------- stored-state surface
    # Read-only views of what the home shard has *persisted* — the raw store
    # rows, not the model-ranked answers ``request_red_dots`` serves.  These
    # power the cluster front door's remote ``store_for`` view, so parity
    # fingerprints read cross-process state over the same wire as traffic.
    def get_red_dots(self, video_id: str) -> list[RedDot]:
        """The persisted red dots for a video, in stored order."""
        return self._decode_dots(
            self._request("GET", self._video_path(video_id, "stored-dots"))
        )

    def latest_highlights(self, video_id: str) -> list[Highlight]:
        """The newest persisted highlight version for a video."""
        payload = self._request("GET", self._video_path(video_id, "latest-highlights"))
        return [codecs.highlight_from_dict(item) for item in payload["highlights"]]

    def highlight_history(self, video_id: str) -> list[HighlightRecord]:
        """Every persisted highlight version for a video, oldest first."""
        payload = self._request("GET", self._video_path(video_id, "highlights"))
        return [codecs.highlight_record_from_dict(item) for item in payload["highlights"]]

    def get_interactions(self, video_id: str) -> list[Interaction]:
        """The persisted viewer interactions for a video, in stored order."""
        payload = self._request("GET", self._video_path(video_id, "interactions"))
        return [codecs.interaction_from_dict(item) for item in payload["interactions"]]

    # ----------------------------------------------------------- live surface
    def start_live(self, video: Video) -> None:
        """Register a live channel and open its session on its home shard."""
        self._request(
            "POST", self._live_path(video.video_id, "start"), codecs.video_to_dict(video)
        )

    def ingest_chat_batch(
        self, video_id: str, messages: Sequence[ChatMessage], persist: bool = False
    ) -> list[StreamEvent]:
        """Push a timestamp-ordered chat batch for a live channel."""
        payload = {
            "messages": [codecs.chat_message_to_dict(m) for m in messages],
            "persist": persist,
        }
        return self._decode_events(
            self._request("POST", self._live_path(video_id, "chat"), payload)
        )

    def ingest_live_chat(
        self, video_id: str, messages: Sequence[ChatMessage]
    ) -> list[StreamEvent]:
        """Per-event twin of :meth:`ingest_chat_batch` (a batch of any size)."""
        return self.ingest_chat_batch(video_id, messages)

    def ingest_plays_batch(
        self, video_id: str, interactions: Sequence[Interaction]
    ) -> list[StreamEvent]:
        """Push a batch of viewer interactions for a live channel."""
        payload = {"interactions": [codecs.interaction_to_dict(i) for i in interactions]}
        return self._decode_events(
            self._request("POST", self._live_path(video_id, "plays"), payload)
        )

    def ingest_live_interactions(
        self, video_id: str, interactions: Sequence[Interaction]
    ) -> list[StreamEvent]:
        """Alias of :meth:`ingest_plays_batch`, matching the service surface."""
        return self.ingest_plays_batch(video_id, interactions)

    def live_red_dots(self, video_id: str) -> list[RedDot]:
        """The dots to render right now for a channel (live or persisted)."""
        return self._decode_dots(self._request("GET", self._live_path(video_id, "dots")))

    def end_live(self, video_id: str, duration: float | None = None) -> list[RedDot]:
        """Close a live channel on its home shard; final dots are persisted."""
        return self._decode_dots(
            self._request("POST", self._live_path(video_id, "end"), {"duration": duration})
        )

    # ------------------------------------------------- placement control plane
    # Admin-plane calls used by the cluster supervisor (push placement, move
    # channels between shards) and by the front door (pull placement after a
    # 409 redirect).  Payloads stay as plain codec dicts: the caller decides
    # whether to materialize a PlacementMap from them.
    def get_placement(self) -> dict:
        """The gateway's current placement payload (map + worker addresses)."""
        return self._request("GET", "/placement")

    def put_placement(
        self, placement: dict, addresses: Sequence[Sequence] = ()
    ) -> dict:
        """Install a placement map (and optionally worker addresses) on the gateway."""
        payload = {"placement": placement, "addresses": [list(a) for a in addresses]}
        return self._request("POST", "/placement", payload)

    def list_channels(self) -> list[str]:
        """Every channel id persisted on this gateway's shard, sorted."""
        return list(self._request("GET", "/admin/channels")["channels"])

    def migrate_out(self, video_id: str) -> dict:
        """Detach and export one channel: ``{"bundle": ..., "was_live": bool}``."""
        return self._request("POST", "/admin/migrate-out", {"video_id": video_id})

    def migrate_in(self, bundle: dict, was_live: bool = False) -> str:
        """Import an exported channel bundle; resume its session when live."""
        payload = {"bundle": bundle, "was_live": was_live}
        return self._request("POST", "/admin/migrate-in", payload)["imported"]

    def forget_channel(self, video_id: str) -> bool:
        """Drop a migrated-out channel's residual state from this shard."""
        return self._request("POST", "/admin/forget-channel", {"video_id": video_id})["forgotten"]

    def fence(self) -> bool:
        """Block until every request already admitted by the gateway finished.

        The reshard census barrier: push a frozen placement, fence, then
        :meth:`list_channels` — the listing is then provably complete.
        """
        return bool(self._request("POST", "/admin/fence")["drained"])

    # ----------------------------------------------------------- observability
    def healthz(self) -> dict:
        """The gateway's health payload."""
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        """The gateway's Prometheus-style metrics text."""
        return self._request("GET", "/metrics")

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release the kept-alive connection (the client can be reused)."""
        self._drop_connection()

    def __enter__(self) -> "LightorClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
