"""Multi-process shard cluster: a supervisor and a wire-routing front door.

:class:`~repro.platform.sharding.ShardedLightorService` buys per-channel
isolation, but its shards share one Python process — per-shard worker
threads serialize on the GIL, so adding shards adds no throughput (the flat
curve in ``BENCH_load.json``).  This module runs each shard as its **own OS
process**:

* :class:`ShardClusterSupervisor` spawns ``N`` child workers — each one a
  ``repro serve --shards 1`` gateway bound to its own port over its own
  database file — supervises their boot (a child that dies while the
  cluster is coming up tears the rest down), reports children that die
  mid-run, and stops them with SIGTERM so durable deployments drain,
  checkpoint and stay resumable via ``repro recover``.
* :class:`ClusterFrontDoor` routes every service-surface call to the owning
  shard over :class:`~repro.platform.client.LightorClient`.  It mirrors the
  in-process front door method for method, and routes through the *same*
  :class:`~repro.platform.placement.PlacementMap` (same digest, same ring at
  epoch 0), so a video id lands on shard ``k`` of the cluster exactly when
  it lands on shard ``k`` in process — which is what lets the load harness
  drive either one and compare fingerprints byte for byte.

The placement map is the cluster's **control plane**.  The supervisor owns
the authoritative copy and pushes it to every worker over
``POST /placement``; a worker that is pushed a map starts refusing channels
it does not own with ``409 Conflict``, and the front door reacts to a 409
by refreshing its map (``GET /placement`` — which also re-learns the
worker address list after a reshard) and retrying against the new owner.
:meth:`ShardClusterSupervisor.reshard` moves channels between *live*
workers with the three-step choreography (``migrate-out`` → ``migrate-in``
→ ``forget``), spawning workers on grow and draining emptied workers on
shrink, while channels that do not move keep serving throughout.

The child protocol is deliberately thin: the worker prints one
machine-readable ``listening on host:port`` line on stdout *before* the
human-readable banner (so ``--port 0`` ephemeral binds are race-free), and
``/healthz`` answering 200 is the readiness barrier.  Every line a child
writes is retained in a bounded per-worker log so a boot failure can show
the culprit's last words.

Lifecycle calls that only make sense next to the database files —
``suspend``, ``recover_live_sessions`` — stay with the *worker processes*:
SIGTERM (``stop()``) makes each child drain and checkpoint its own shard,
and ``repro recover --db-path <base>.shardK.db --shards 1`` resumes it.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import threading
import time
from collections import deque
from pathlib import Path
from typing import Sequence

from repro.core.types import ChatMessage, Highlight, Interaction, RedDot, Video
from repro.platform import codecs, wire
from repro.platform.backends import is_memory_path
from repro.platform.backends.base import HighlightRecord
from repro.platform.client import GatewayError, LightorClient
from repro.platform.placement import PlacementMap, WrongShardError
from repro.platform.sharding import ChannelMigration, ReshardReport, shard_db_path
from repro.streaming.events import StreamEvent
from repro.utils.logging import get_logger
from repro.utils.validation import ValidationError, require_positive

__all__ = ["ClusterFrontDoor", "ShardClusterSupervisor", "ShardWorker"]

_LOGGER = get_logger("platform.cluster")

# The machine-readable readiness line `repro serve` prints before accepting
# traffic.  Anchored and strict: the human-readable banner must never match.
_LISTENING = re.compile(r"^listening on (\S+):(\d+)\s*$")

# Lines of child output retained per worker for failure forensics.
_LOG_LINES = 100


class ShardWorker:
    """One supervised shard subprocess and what the supervisor knows of it."""

    def __init__(self, index: int, command: list[str], db_path: str | None) -> None:
        self.index = index
        self.command = command
        self.db_path = db_path
        self.process: subprocess.Popen | None = None
        self.host: str | None = None
        self.port: int | None = None
        self.log: deque[str] = deque(maxlen=_LOG_LINES)
        self.ready = threading.Event()
        self._pump: threading.Thread | None = None

    # ------------------------------------------------------------- lifecycle
    def spawn(self, env: dict[str, str]) -> None:
        """Start the subprocess and the stdout pump thread."""
        self.process = subprocess.Popen(
            self.command,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        self._pump = threading.Thread(
            target=self._pump_stdout, name=f"shard-{self.index}-stdout", daemon=True
        )
        self._pump.start()

    def _pump_stdout(self) -> None:
        """Drain child stdout forever: parse readiness, retain the tail.

        The pipe must be drained for the child's whole life (a full pipe
        buffer would wedge its prints); EOF doubles as the death signal, so
        ``ready`` is always set eventually and boot never waits on a corpse.
        """
        stream = self.process.stdout
        try:
            for line in stream:
                line = line.rstrip("\n")
                self.log.append(line)
                if not self.ready.is_set():
                    match = _LISTENING.match(line)
                    if match:
                        self.host = match.group(1)
                        self.port = int(match.group(2))
                        self.ready.set()
        finally:
            self.ready.set()
            stream.close()

    @property
    def alive(self) -> bool:
        """Whether the subprocess is currently running."""
        return self.process is not None and self.process.poll() is None

    def log_tail(self, lines: int = 10) -> str:
        """The child's last few output lines, indented for error messages."""
        tail = list(self.log)[-lines:]
        return "\n".join(f"    [shard {self.index}] {line}" for line in tail) or (
            f"    [shard {self.index}] (no output)"
        )

    def join_pump(self, timeout: float = 5.0) -> None:
        """Wait for the stdout pump to observe EOF (call after the child died)."""
        if self._pump is not None:
            self._pump.join(timeout=timeout)


class ShardClusterSupervisor:
    """Spawn, watch and stop ``N`` single-shard ``repro serve`` workers.

    Parameters
    ----------
    n_shards:
        Worker processes.  Worker ``k`` owns ring bucket ``k`` — the same
        bucket the in-process front door would route to.
    backend / db_path:
        Storage behind each worker.  With ``backend="sqlite"`` and a file
        path, worker ``k`` is pointed at ``shard_db_path(db_path, k)``
        (``base.db`` → ``base.shardK.db``); the worker's own single-shard
        service suffixes once more, so its file on disk is
        ``base.shardK.shard0.db`` and ``repro recover --db-path
        base.shardK.db --shards 1`` finds it.
    host / base_port:
        Bind address per worker.  ``base_port=0`` (default) gives every
        worker an ephemeral port — the readiness line reports the real one;
        otherwise worker ``k`` binds ``base_port + k``.
    seed / live_k / max_live_sessions / checkpoint_every:
        Forwarded to each worker's ``repro serve`` so the cluster's engine
        state is parameter-identical to an in-process tier built with the
        same values (``seed`` trains the same model deterministically in
        every child).
    max_pending / worker_threads:
        Per-worker gateway admission budget and service thread pool.
    max_pending_per_channel:
        Optional per-channel admission budget forwarded to every worker
        gateway (``serve --max-pending-per-channel``) — one hot channel
        cannot starve a worker's whole global budget.
    boot_timeout:
        Deadline for *all* workers to print readiness and answer
        ``/healthz``.
    client_timeout:
        Socket timeout for the supervisor's own health probes and for
        front doors built via :meth:`front_door`.
    """

    def __init__(
        self,
        n_shards: int,
        *,
        backend: str = "memory",
        db_path: str | Path | None = None,
        host: str = "127.0.0.1",
        base_port: int = 0,
        seed: int = 2020,
        live_k: int | None = None,
        max_live_sessions: int = 64,
        checkpoint_every: int | None = None,
        max_pending: int = 64,
        worker_threads: int = 8,
        max_pending_per_channel: int | None = None,
        boot_timeout: float = 60.0,
        client_timeout: float = 60.0,
        replicas: int = 64,
        wire_codec: str = "json",
    ) -> None:
        require_positive(n_shards, "n_shards")
        require_positive(max_live_sessions, "max_live_sessions")
        if wire_codec not in wire.WIRE_CODECS:
            raise ValidationError(
                f"unknown wire codec {wire_codec!r} (expected one of {wire.WIRE_CODECS})"
            )
        if db_path is not None and backend != "sqlite":
            raise ValidationError("db_path requires the sqlite backend")
        if backend == "sqlite" and db_path is not None and is_memory_path(db_path):
            raise ValidationError(
                "a cluster cannot share ':memory:' databases across processes; "
                "pass a file path or use backend='memory'"
            )
        if base_port < 0:
            raise ValidationError("base_port must be >= 0")
        self.n_shards = n_shards
        self.backend = backend
        self.db_path = None if db_path is None else str(db_path)
        self.host = host
        self.base_port = base_port
        self.seed = seed
        self.live_k = live_k
        self.max_live_sessions = max_live_sessions
        self.checkpoint_every = checkpoint_every
        self.max_pending = max_pending
        self.worker_threads = worker_threads
        self.max_pending_per_channel = max_pending_per_channel
        self.boot_timeout = boot_timeout
        self.client_timeout = client_timeout
        self.replicas = replicas
        self.wire_codec = wire_codec
        # The authoritative placement map: epoch 0 is the legacy ring, every
        # migration and reshard bumps it, and every bump is pushed to every
        # worker before the data moves (the push is the workers' license to
        # 409 traffic for the moving channel).
        self.placement = PlacementMap(n_shards, replicas=replicas)
        self.workers: list[ShardWorker] = []
        self._exit_codes: list[int] | None = None
        self._started = False

    # ----------------------------------------------------------- construction
    def _worker_command(self, index: int) -> tuple[list[str], str | None]:
        port = 0 if self.base_port == 0 else self.base_port + index
        command = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            self.host,
            "--port",
            str(port),
            "--shards",
            "1",
            "--backend",
            self.backend,
            "--seed",
            str(self.seed),
            "--max-live-sessions",
            str(self.max_live_sessions),
            "--max-pending",
            str(self.max_pending),
            "--worker-threads",
            str(self.worker_threads),
            "--wire-codec",
            self.wire_codec,
            "--shard-index",
            str(index),
        ]
        db_path: str | None = None
        if self.db_path is not None:
            db_path = shard_db_path(self.db_path, index)
            command += ["--db-path", db_path]
        if self.max_pending_per_channel is not None:
            command += ["--max-pending-per-channel", str(self.max_pending_per_channel)]
        if self.checkpoint_every is not None:
            command += ["--checkpoint-every", str(self.checkpoint_every)]
        if self.live_k is not None:
            command += ["--k", str(self.live_k)]
        return command, db_path

    def _child_env(self) -> dict[str, str]:
        """The child environment, with ``repro`` guaranteed importable."""
        env = dict(os.environ)
        src_dir = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src_dir if not existing else os.pathsep.join([src_dir, existing])
        return env

    # -------------------------------------------------------------- lifecycle
    def start(self) -> "ShardClusterSupervisor":
        """Spawn every worker and wait for the whole cluster to be ready.

        Readiness is two barriers per worker: the ``listening on host:port``
        stdout line (which resolves ephemeral ports), then ``/healthz``
        answering over the wire.  Any worker dying — or the
        ``boot_timeout`` expiring — before both barriers tears the whole
        cluster down and raises with the failing worker's output tail.
        """
        if self._started:
            raise ValidationError("cluster already started")
        self._started = True
        env = self._child_env()
        deadline = time.monotonic() + self.boot_timeout
        try:
            for index in range(self.n_shards):
                command, db_path = self._worker_command(index)
                worker = ShardWorker(index, command, db_path)
                worker.spawn(env)
                self.workers.append(worker)
            for worker in self.workers:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not worker.ready.wait(timeout=remaining):
                    raise RuntimeError(
                        f"shard {worker.index} did not report readiness within "
                        f"{self.boot_timeout:g}s; its output was:\n{worker.log_tail()}"
                    )
                if worker.port is None:
                    # The pump hit EOF before a listening line: the child died
                    # during boot (bad flags, bound port taken, poisoned db).
                    worker.process.wait()
                    raise RuntimeError(
                        f"shard {worker.index} exited with code "
                        f"{worker.process.returncode} during boot; its output "
                        f"was:\n{worker.log_tail()}"
                    )
            self._health_barrier(deadline)
            self._push_placement()
        except BaseException:
            self._teardown_hard()
            raise
        _LOGGER.info(
            "cluster up: %d shard worker(s) at %s",
            self.n_shards,
            ", ".join(f"{w.host}:{w.port}" for w in self.workers),
        )
        return self

    def _health_barrier(self, deadline: float, workers: Sequence[ShardWorker] | None = None) -> None:
        """Block until every worker's ``/healthz`` answers (or the deadline)."""
        for worker in self.workers if workers is None else workers:
            client = LightorClient(worker.host, worker.port, timeout=self.client_timeout)
            try:
                while True:
                    if not worker.alive:
                        worker.process.wait()
                        raise RuntimeError(
                            f"shard {worker.index} exited with code "
                            f"{worker.process.returncode} before /healthz answered; "
                            f"its output was:\n{worker.log_tail()}"
                        )
                    try:
                        payload = client.healthz()
                        if payload.get("status") == "ok":
                            break
                    except OSError:
                        pass
                    if time.monotonic() >= deadline:
                        raise RuntimeError(
                            f"shard {worker.index} at {worker.host}:{worker.port} "
                            f"did not answer /healthz within {self.boot_timeout:g}s"
                        )
                    time.sleep(0.05)
            finally:
                client.close()

    def _teardown_hard(self) -> None:
        """Boot-failure cleanup: no drain, just make every child gone."""
        for worker in self.workers:
            if worker.alive:
                worker.process.terminate()
        for worker in self.workers:
            if worker.process is None:
                continue
            try:
                worker.process.wait(timeout=5)
            except subprocess.TimeoutExpired:
                worker.process.kill()
                worker.process.wait()
            worker.join_pump()

    def dead_shards(self) -> list[int]:
        """Indices of workers that have exited (empty on a healthy cluster).

        The mid-run supervision hook: ``repro cluster`` polls it and fails
        the deployment when a worker dies underneath the front door.
        """
        if self._exit_codes is not None:
            return []
        return [worker.index for worker in self.workers if not worker.alive]

    def stop(self, timeout: float = 30.0) -> list[int]:
        """SIGTERM every worker and wait; returns their exit codes.

        SIGTERM is the graceful path: each worker drains its gateway and —
        on a durable backend — suspends its sessions (checkpoint and
        release), so the cluster's databases resume byte-exactly via
        ``repro recover``.  A worker that ignores the deadline is killed
        (exit code < 0).  Idempotent: the first result is cached, and a
        worker that already exited just contributes its code.
        """
        if self._exit_codes is not None:
            return self._exit_codes
        codes: list[int] = []
        for worker in self.workers:
            if worker.alive:
                worker.process.terminate()
        for worker in self.workers:
            if worker.process is None:
                codes.append(-1)
                continue
            try:
                worker.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                _LOGGER.warning(
                    "shard %d ignored SIGTERM for %gs; killing", worker.index, timeout
                )
                worker.process.kill()
                worker.process.wait()
            worker.join_pump()
            codes.append(worker.process.returncode)
        self._exit_codes = codes
        return codes

    # --------------------------------------------------------- placement plane
    def _admin_client(self, worker: ShardWorker) -> LightorClient:
        """A fresh control-plane client for one worker (caller closes it)."""
        return LightorClient(
            worker.host, worker.port, timeout=self.client_timeout,
            wire_codec=self.wire_codec,
        )

    def _push_placement(self) -> None:
        """Install the supervisor's placement map on every live worker.

        The push is synchronous and ordered before whatever state change it
        licenses (a migration's data movement, a reshard's commit): a worker
        that has answered the POST is guaranteed to 409 traffic for channels
        the new map takes away from it, which is what makes the front door's
        refresh-and-retry loop lossless.
        """
        payload = codecs.placement_map_to_dict(self.placement)
        addresses = [[worker.host, worker.port] for worker in self.workers]
        for worker in self.workers:
            client = self._admin_client(worker)
            try:
                client.put_placement(payload, addresses)
            finally:
                client.close()

    def _channel_census(self) -> set[str]:
        """Every channel persisted anywhere in the fleet (union of workers)."""
        channels: set[str] = set()
        for worker in self.workers:
            client = self._admin_client(worker)
            try:
                channels.update(client.list_channels())
            finally:
                client.close()
        return channels

    def migrate_channel(self, video_id: str, dst_shard: int) -> ChannelMigration:
        """Move one channel between live workers (out → in → forget).

        The cross-process data plane: the channel is marked in-flight and the
        map pushed (every worker now 409s its traffic), the source worker
        checkpoints + exports it, the destination imports it (resuming the
        live session from the bundled checkpoint), the source forgets its
        rows, and the completed map is pushed.  A failure mid-move aborts the
        placement change and re-pushes — the source still holds every row, so
        nothing is lost.  The measured ``seconds`` is the channel's whole
        unavailability window.
        """
        if not 0 <= dst_shard < len(self.workers):
            raise ValidationError(
                f"destination shard {dst_shard} does not exist "
                f"(cluster has {len(self.workers)} worker(s))"
            )
        src = self.placement.shard_for(video_id)
        if src == dst_shard:
            return ChannelMigration(
                video_id=video_id, src=src, dst=dst_shard,
                was_live=False, seconds=0.0, moved=False,
            )
        started = time.perf_counter()
        self.placement.begin_migration(video_id)
        source = self._admin_client(self.workers[src])
        destination = self._admin_client(self.workers[dst_shard])
        try:
            self._push_placement()
            out = source.migrate_out(video_id)
            destination.migrate_in(out["bundle"], was_live=out["was_live"])
            source.forget_channel(video_id)
        except BaseException:
            self.placement.abort_migration(video_id)
            self._push_placement()
            raise
        finally:
            source.close()
            destination.close()
        self.placement.complete_migration(video_id, dst_shard)
        self._push_placement()
        return ChannelMigration(
            video_id=video_id, src=src, dst=dst_shard,
            was_live=bool(out["was_live"]),
            seconds=time.perf_counter() - started,
        )

    def reshard(self, new_n_shards: int) -> ReshardReport:
        """Online reshard: grow or shrink the live worker fleet in place.

        Grow spawns the new workers first (boot-checked exactly like
        :meth:`start`), then drains the minimal channel set onto them one
        migration at a time; shrink migrates every channel off the doomed
        workers, then SIGTERMs them.  Channels that do not move keep serving
        throughout — only the channel currently in flight pays a pause.
        """
        require_positive(new_n_shards, "new_n_shards")
        if not self._started or self._exit_codes is not None:
            raise ValidationError("reshard needs a started, running cluster")
        old_n_shards = len(self.workers)
        if new_n_shards == old_n_shards:
            return ReshardReport(
                old_n_shards=old_n_shards, new_n_shards=new_n_shards,
                epoch=self.placement.epoch, migrations=(),
            )
        env = self._child_env()
        if new_n_shards > old_n_shards:
            deadline = time.monotonic() + self.boot_timeout
            fresh: list[ShardWorker] = []
            for index in range(old_n_shards, new_n_shards):
                command, db_path = self._worker_command(index)
                worker = ShardWorker(index, command, db_path)
                worker.spawn(env)
                fresh.append(worker)
            try:
                for worker in fresh:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not worker.ready.wait(timeout=remaining):
                        raise RuntimeError(
                            f"shard {worker.index} did not report readiness within "
                            f"{self.boot_timeout:g}s; its output was:\n{worker.log_tail()}"
                        )
                    if worker.port is None:
                        worker.process.wait()
                        raise RuntimeError(
                            f"shard {worker.index} exited with code "
                            f"{worker.process.returncode} during reshard boot; its "
                            f"output was:\n{worker.log_tail()}"
                        )
                self._health_barrier(deadline, fresh)
            except BaseException:
                for worker in fresh:
                    if worker.alive:
                        worker.process.terminate()
                for worker in fresh:
                    if worker.process is not None:
                        worker.process.wait()
                        worker.join_pump()
                raise
            self.workers.extend(fresh)
            self._push_placement()

        # Bulk phase: census the fleet and drain the planned channel set
        # with no global barrier — unmoved channels keep serving, only the
        # channel in flight pays a pause.
        plan = self.placement.plan_reshard(sorted(self._channel_census()), new_n_shards)
        migrations = [self.migrate_channel(move.video_id, move.dst) for move in plan]

        # Commit barrier: channels created *during* the bulk phase were
        # placed by the old ring and would be stranded by the ring swap
        # (traffic re-routes, their rows do not).  Freeze the map (every
        # worker 409s all channel traffic once the push lands), fence each
        # worker so requests admitted before the freeze have finished, take
        # a now-provably-complete census, and sweep the stragglers.  The
        # barrier lasts one sweep — milliseconds — and ends at commit.
        self.placement.freeze()
        try:
            self._push_placement()
            for worker in self.workers:
                client = self._admin_client(worker)
                try:
                    client.fence()
                finally:
                    client.close()
            follow_up = self.placement.plan_reshard(
                sorted(self._channel_census()), new_n_shards
            )
            migrations.extend(
                self.migrate_channel(move.video_id, move.dst) for move in follow_up
            )
        except BaseException:
            self.placement.thaw()
            self._push_placement()
            raise
        epoch = self.placement.commit_reshard(new_n_shards)

        if new_n_shards < old_n_shards:
            drained = self.workers[new_n_shards:]
            del self.workers[new_n_shards:]
            for worker in drained:
                if worker.alive:
                    worker.process.terminate()
            for worker in drained:
                if worker.process is None:
                    continue
                try:
                    worker.process.wait(timeout=30.0)
                except subprocess.TimeoutExpired:
                    worker.process.kill()
                    worker.process.wait()
                worker.join_pump()
        self.n_shards = new_n_shards
        self._push_placement()
        _LOGGER.info(
            "resharded cluster %d -> %d worker(s): %d channel(s) moved, epoch %d",
            old_n_shards, new_n_shards, sum(m.moved for m in migrations), epoch,
        )
        return ReshardReport(
            old_n_shards=old_n_shards, new_n_shards=new_n_shards,
            epoch=epoch, migrations=tuple(migrations),
        )

    # ---------------------------------------------------------------- routing
    @property
    def addresses(self) -> list[tuple[str, int]]:
        """``(host, port)`` per worker, in shard order (after :meth:`start`)."""
        return [(worker.host, worker.port) for worker in self.workers]

    def front_door(self) -> "ClusterFrontDoor":
        """A new :class:`ClusterFrontDoor` over this cluster's workers.

        Each call builds an independent front door (own sockets) — hand one
        to each thread that needs the cluster.  All of them share the
        supervisor's live placement map, so an in-process reshard re-routes
        every front door the instant it commits; address changes (grown or
        drained workers) are still learned per front door via the 409
        refresh protocol.
        """
        return ClusterFrontDoor(
            self.addresses,
            replicas=self.replicas,
            timeout=self.client_timeout,
            wire_codec=self.wire_codec,
            placement=self.placement,
        )

    def __enter__(self) -> "ShardClusterSupervisor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class _RemoteStoreView:
    """Read-only facade over one shard's persisted state, via its gateway.

    Quacks like the slice of :class:`~repro.platform.backends.base.StorageBackend`
    the load harness's fingerprint reads, so
    ``ClusterFrontDoor.store_for(video_id)`` drops into code written against
    the in-process front door — but every read crosses the wire, which is
    the point: parity checks must see exactly what the shard *process*
    persisted, not some local replica.
    """

    def __init__(self, client: LightorClient) -> None:
        self._client = client

    def get_red_dots(self, video_id: str) -> list[RedDot]:
        return self._client.get_red_dots(video_id)

    def latest_highlights(self, video_id: str) -> list[Highlight]:
        return self._client.latest_highlights(video_id)

    def highlight_history(self, video_id: str) -> list[HighlightRecord]:
        return self._client.highlight_history(video_id)

    def get_interactions(self, video_id: str) -> list[Interaction]:
        return self._client.get_interactions(video_id)


class ClusterFrontDoor:
    """Route the service surface to shard processes through a placement map.

    The wire twin of :class:`~repro.platform.sharding.ShardedLightorService`:
    same placement map, same method surface — callers written against the
    in-process front door (the load generator above all) drive a process
    cluster unchanged.  At epoch 0 the map *is* the legacy consistent-hash
    ring, so routing is byte-identical to every earlier deployment; once the
    cluster resharding control plane starts bumping epochs, a 409 from a
    worker makes the front door refresh its map (and, after a reshard, its
    worker address list) and retry transparently — callers never see the
    redirect.

    One kept-alive :class:`~repro.platform.client.LightorClient` per shard;
    like the client itself, a front door is **not** thread-safe — build one
    per thread via :meth:`clone` (or
    :meth:`ShardClusterSupervisor.front_door`).  Clones *share* the placement
    map object, so one clone's refresh re-routes them all.
    """

    def __init__(
        self,
        addresses: Sequence[tuple[str, int]],
        *,
        replicas: int = 64,
        timeout: float = 60.0,
        wire_codec: str = "json",
        placement: PlacementMap | None = None,
    ) -> None:
        if not addresses:
            raise ValidationError("a cluster front door needs at least one shard address")
        self.addresses = [(str(host), int(port)) for host, port in addresses]
        self._replicas = replicas
        self._timeout = timeout
        self.wire_codec = wire_codec
        if placement is None:
            placement = PlacementMap(len(self.addresses), replicas=replicas)
        self.placement = placement
        self._clients = [
            LightorClient(host, port, timeout=timeout, wire_codec=wire_codec)
            for host, port in self.addresses
        ]

    # ----------------------------------------------------------------- routing
    @property
    def n_shards(self) -> int:
        """Number of shard processes behind the front door."""
        return len(self._clients)

    @property
    def epoch(self) -> int:
        """The placement epoch this front door is routing with."""
        return self.placement.epoch

    def shard_index(self, video_id: str) -> int:
        """The shard that owns ``video_id`` (identical to the in-process map)."""
        return self.placement.shard_for(video_id)

    def client_for(self, video_id: str) -> LightorClient:
        """The wire client of the shard owning ``video_id``."""
        index = self.shard_index(video_id)
        if index >= len(self._clients):
            # The shared map already routes to a shard this front door has
            # not met (a mid-reshard grow): learn the new address list.
            self._refresh_placement()
            index = self.shard_index(video_id)
            if index >= len(self._clients):
                raise ValidationError(
                    f"placement routes {video_id!r} to shard {index} but the "
                    f"front door only knows {len(self._clients)} worker(s)"
                )
        return self._clients[index]

    def _refresh_placement(self) -> None:
        """Pull the freshest placement (and worker addresses) from the fleet.

        Every reachable worker is asked; every answer is installed (the map
        keeps the newest epoch), and the best answer's address list replaces
        this front door's clients when it differs — that is how a front door
        built before a reshard learns about grown or drained workers without
        talking to the supervisor.
        """
        best: dict | None = None
        for client in list(self._clients):
            try:
                payload = client.get_placement()
            except (ValidationError, GatewayError, OSError):
                # Unreachable, drained, or placement-less worker: any other
                # worker's answer is as authoritative (the supervisor pushes
                # to all of them in lockstep).
                continue
            self.placement.install(codecs.placement_map_from_dict(payload["placement"]))
            if best is None or payload["placement"]["epoch"] > best["placement"]["epoch"]:
                best = payload
        if best is None:
            return
        addresses = [(str(host), int(port)) for host, port in best.get("addresses", [])]
        if addresses and addresses != self.addresses:
            stale = self._clients
            self.addresses = addresses
            self._clients = [
                LightorClient(host, port, timeout=self._timeout, wire_codec=self.wire_codec)
                for host, port in addresses
            ]
            for client in stale:
                client.close()

    def _call(self, video_id: str, call):
        """Run one client call against the channel's owner, riding out 409s.

        The retry loop of the placement protocol: a ``409 Conflict`` means
        the worker disowns the channel (moved, or mid-migration), so the
        front door refreshes its map and retries — immediately when the
        route changed, after a short sleep when it did not (the channel is
        in flight and the commit push has not landed yet).  Bounded by the
        client timeout so a wedged control plane surfaces as the 409 rather
        than spinning forever.
        """
        deadline = time.monotonic() + self._timeout
        while True:
            index = self.shard_index(video_id)
            try:
                return call(self.client_for(video_id))
            except WrongShardError:
                if time.monotonic() >= deadline:
                    raise
                self._refresh_placement()
                if self.shard_index(video_id) == index:
                    time.sleep(0.02)

    def store_for(self, video_id: str) -> _RemoteStoreView:
        """A read-only view of the owning shard's persisted state."""
        return _RemoteStoreView(self.client_for(video_id))

    def clone(self) -> "ClusterFrontDoor":
        """An independent front door over the same shards (for another thread).

        Shares this front door's placement map — sockets are per-clone, the
        control plane is common.
        """
        return ClusterFrontDoor(
            self.addresses,
            replicas=self._replicas,
            timeout=self._timeout,
            wire_codec=self.wire_codec,
            placement=self.placement,
        )

    # ------------------------------------------------------------ batch surface
    def register_video(self, video: Video) -> None:
        """Store video metadata on its home shard (no live session opened)."""
        self._call(video.video_id, lambda client: client.register_video(video))

    def request_red_dots(self, video_id: str, k: int | None = None) -> list[RedDot]:
        """Red dots for a recorded video, computed by its home shard."""
        return self._call(video_id, lambda client: client.request_red_dots(video_id, k=k))

    def log_interactions(self, video_id: str, interactions: Sequence[Interaction]) -> int:
        """Persist viewer interactions on the video's home shard."""
        return self._call(
            video_id, lambda client: client.log_interactions(video_id, interactions)
        )

    def refine_video(self, video_id: str) -> int:
        """Run one Extractor refinement pass on the video's home shard."""
        return self._call(video_id, lambda client: client.refine_video(video_id))

    def get_red_dots(self, video_id: str) -> list[RedDot]:
        """The stored red dots for a video (its home shard's backend)."""
        return self._call(video_id, lambda client: client.get_red_dots(video_id))

    def latest_highlights(self, video_id: str) -> list[Highlight]:
        """The most recent stored highlight per area for a video."""
        return self._call(video_id, lambda client: client.latest_highlights(video_id))

    def highlight_history(self, video_id: str) -> list[HighlightRecord]:
        """Every stored highlight record for a video, in version order."""
        return self._call(video_id, lambda client: client.highlight_history(video_id))

    def get_interactions(self, video_id: str) -> list[Interaction]:
        """The stored viewer interactions for a video, in insertion order."""
        return self._call(video_id, lambda client: client.get_interactions(video_id))

    # ------------------------------------------------------------- live surface
    def start_live(self, video: Video) -> None:
        """Register a live channel and open its session on its home shard."""
        self._call(video.video_id, lambda client: client.start_live(video))

    def ingest_live_chat(
        self, video_id: str, messages: Sequence[ChatMessage]
    ) -> list[StreamEvent]:
        """Push live chat to the channel's home shard."""
        return self._call(
            video_id, lambda client: client.ingest_live_chat(video_id, messages)
        )

    def ingest_chat_batch(
        self, video_id: str, messages: Sequence[ChatMessage], persist: bool = False
    ) -> list[StreamEvent]:
        """Push a chat batch to the channel's home shard (one request per batch)."""
        return self._call(
            video_id,
            lambda client: client.ingest_chat_batch(video_id, messages, persist=persist),
        )

    def ingest_live_interactions(
        self, video_id: str, interactions: Sequence[Interaction]
    ) -> list[StreamEvent]:
        """Push live viewer interactions to the channel's home shard."""
        return self._call(
            video_id, lambda client: client.ingest_live_interactions(video_id, interactions)
        )

    def ingest_plays_batch(
        self, video_id: str, interactions: Sequence[Interaction]
    ) -> list[StreamEvent]:
        """Push a viewer-interaction batch to the channel's home shard."""
        return self._call(
            video_id, lambda client: client.ingest_plays_batch(video_id, interactions)
        )

    def live_red_dots(self, video_id: str) -> list[RedDot]:
        """The dots to render right now for a channel (live or persisted)."""
        return self._call(video_id, lambda client: client.live_red_dots(video_id))

    def end_live(self, video_id: str, duration: float | None = None) -> list[RedDot]:
        """Close a live channel on its home shard; final dots are persisted."""
        return self._call(video_id, lambda client: client.end_live(video_id, duration))

    # ----------------------------------------------------------- observability
    def healthz(self) -> list[dict]:
        """Every shard's health payload, in shard order."""
        return [client.healthz() for client in self._clients]

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release every kept-alive connection.

        Closes only the front door's sockets — the shard *processes* belong
        to the supervisor (``stop()`` drains and checkpoints them).  Safe to
        call more than once, matching the in-process front door's contract
        that the load harness may close the service it drove.
        """
        for client in self._clients:
            client.close()

    def __enter__(self) -> "ClusterFrontDoor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
