"""Multi-process shard cluster: a supervisor and a wire-routing front door.

:class:`~repro.platform.sharding.ShardedLightorService` buys per-channel
isolation, but its shards share one Python process — per-shard worker
threads serialize on the GIL, so adding shards adds no throughput (the flat
curve in ``BENCH_load.json``).  This module runs each shard as its **own OS
process**:

* :class:`ShardClusterSupervisor` spawns ``N`` child workers — each one a
  ``repro serve --shards 1`` gateway bound to its own port over its own
  database file — supervises their boot (a child that dies while the
  cluster is coming up tears the rest down), reports children that die
  mid-run, and stops them with SIGTERM so durable deployments drain,
  checkpoint and stay resumable via ``repro recover``.
* :class:`ClusterFrontDoor` consistent-hash-routes every service-surface
  call to the owning shard over :class:`~repro.platform.client.LightorClient`.
  It mirrors the in-process front door method for method, and the ring is
  the *same* deterministic ring (:class:`~repro.platform.sharding.ConsistentHashRing`
  over the same digest), so a video id lands on shard ``k`` of the cluster
  exactly when it lands on shard ``k`` in process — which is what lets the
  load harness drive either one and compare fingerprints byte for byte.

The child protocol is deliberately thin: the worker prints one
machine-readable ``listening on host:port`` line on stdout *before* the
human-readable banner (so ``--port 0`` ephemeral binds are race-free), and
``/healthz`` answering 200 is the readiness barrier.  Every line a child
writes is retained in a bounded per-worker log so a boot failure can show
the culprit's last words.

Lifecycle calls that only make sense next to the database files —
``suspend``, ``recover_live_sessions`` — stay with the *worker processes*:
SIGTERM (``stop()``) makes each child drain and checkpoint its own shard,
and ``repro recover --db-path <base>.shardK.db --shards 1`` resumes it.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import threading
import time
from collections import deque
from pathlib import Path
from typing import Sequence

from repro.core.types import ChatMessage, Highlight, Interaction, RedDot, Video
from repro.platform import wire
from repro.platform.backends import is_memory_path
from repro.platform.backends.base import HighlightRecord
from repro.platform.client import LightorClient
from repro.platform.sharding import ConsistentHashRing, shard_db_path
from repro.streaming.events import StreamEvent
from repro.utils.logging import get_logger
from repro.utils.validation import ValidationError, require_positive

__all__ = ["ClusterFrontDoor", "ShardClusterSupervisor", "ShardWorker"]

_LOGGER = get_logger("platform.cluster")

# The machine-readable readiness line `repro serve` prints before accepting
# traffic.  Anchored and strict: the human-readable banner must never match.
_LISTENING = re.compile(r"^listening on (\S+):(\d+)\s*$")

# Lines of child output retained per worker for failure forensics.
_LOG_LINES = 100


class ShardWorker:
    """One supervised shard subprocess and what the supervisor knows of it."""

    def __init__(self, index: int, command: list[str], db_path: str | None) -> None:
        self.index = index
        self.command = command
        self.db_path = db_path
        self.process: subprocess.Popen | None = None
        self.host: str | None = None
        self.port: int | None = None
        self.log: deque[str] = deque(maxlen=_LOG_LINES)
        self.ready = threading.Event()
        self._pump: threading.Thread | None = None

    # ------------------------------------------------------------- lifecycle
    def spawn(self, env: dict[str, str]) -> None:
        """Start the subprocess and the stdout pump thread."""
        self.process = subprocess.Popen(
            self.command,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        self._pump = threading.Thread(
            target=self._pump_stdout, name=f"shard-{self.index}-stdout", daemon=True
        )
        self._pump.start()

    def _pump_stdout(self) -> None:
        """Drain child stdout forever: parse readiness, retain the tail.

        The pipe must be drained for the child's whole life (a full pipe
        buffer would wedge its prints); EOF doubles as the death signal, so
        ``ready`` is always set eventually and boot never waits on a corpse.
        """
        stream = self.process.stdout
        try:
            for line in stream:
                line = line.rstrip("\n")
                self.log.append(line)
                if not self.ready.is_set():
                    match = _LISTENING.match(line)
                    if match:
                        self.host = match.group(1)
                        self.port = int(match.group(2))
                        self.ready.set()
        finally:
            self.ready.set()
            stream.close()

    @property
    def alive(self) -> bool:
        """Whether the subprocess is currently running."""
        return self.process is not None and self.process.poll() is None

    def log_tail(self, lines: int = 10) -> str:
        """The child's last few output lines, indented for error messages."""
        tail = list(self.log)[-lines:]
        return "\n".join(f"    [shard {self.index}] {line}" for line in tail) or (
            f"    [shard {self.index}] (no output)"
        )

    def join_pump(self, timeout: float = 5.0) -> None:
        """Wait for the stdout pump to observe EOF (call after the child died)."""
        if self._pump is not None:
            self._pump.join(timeout=timeout)


class ShardClusterSupervisor:
    """Spawn, watch and stop ``N`` single-shard ``repro serve`` workers.

    Parameters
    ----------
    n_shards:
        Worker processes.  Worker ``k`` owns ring bucket ``k`` — the same
        bucket the in-process front door would route to.
    backend / db_path:
        Storage behind each worker.  With ``backend="sqlite"`` and a file
        path, worker ``k`` is pointed at ``shard_db_path(db_path, k)``
        (``base.db`` → ``base.shardK.db``); the worker's own single-shard
        service suffixes once more, so its file on disk is
        ``base.shardK.shard0.db`` and ``repro recover --db-path
        base.shardK.db --shards 1`` finds it.
    host / base_port:
        Bind address per worker.  ``base_port=0`` (default) gives every
        worker an ephemeral port — the readiness line reports the real one;
        otherwise worker ``k`` binds ``base_port + k``.
    seed / live_k / max_live_sessions / checkpoint_every:
        Forwarded to each worker's ``repro serve`` so the cluster's engine
        state is parameter-identical to an in-process tier built with the
        same values (``seed`` trains the same model deterministically in
        every child).
    max_pending / worker_threads:
        Per-worker gateway admission budget and service thread pool.
    max_pending_per_channel:
        Optional per-channel admission budget forwarded to every worker
        gateway (``serve --max-pending-per-channel``) — one hot channel
        cannot starve a worker's whole global budget.
    boot_timeout:
        Deadline for *all* workers to print readiness and answer
        ``/healthz``.
    client_timeout:
        Socket timeout for the supervisor's own health probes and for
        front doors built via :meth:`front_door`.
    """

    def __init__(
        self,
        n_shards: int,
        *,
        backend: str = "memory",
        db_path: str | Path | None = None,
        host: str = "127.0.0.1",
        base_port: int = 0,
        seed: int = 2020,
        live_k: int | None = None,
        max_live_sessions: int = 64,
        checkpoint_every: int | None = None,
        max_pending: int = 64,
        worker_threads: int = 8,
        max_pending_per_channel: int | None = None,
        boot_timeout: float = 60.0,
        client_timeout: float = 60.0,
        replicas: int = 64,
        wire_codec: str = "json",
    ) -> None:
        require_positive(n_shards, "n_shards")
        require_positive(max_live_sessions, "max_live_sessions")
        if wire_codec not in wire.WIRE_CODECS:
            raise ValidationError(
                f"unknown wire codec {wire_codec!r} (expected one of {wire.WIRE_CODECS})"
            )
        if db_path is not None and backend != "sqlite":
            raise ValidationError("db_path requires the sqlite backend")
        if backend == "sqlite" and db_path is not None and is_memory_path(db_path):
            raise ValidationError(
                "a cluster cannot share ':memory:' databases across processes; "
                "pass a file path or use backend='memory'"
            )
        if base_port < 0:
            raise ValidationError("base_port must be >= 0")
        self.n_shards = n_shards
        self.backend = backend
        self.db_path = None if db_path is None else str(db_path)
        self.host = host
        self.base_port = base_port
        self.seed = seed
        self.live_k = live_k
        self.max_live_sessions = max_live_sessions
        self.checkpoint_every = checkpoint_every
        self.max_pending = max_pending
        self.worker_threads = worker_threads
        self.max_pending_per_channel = max_pending_per_channel
        self.boot_timeout = boot_timeout
        self.client_timeout = client_timeout
        self.replicas = replicas
        self.wire_codec = wire_codec
        self.workers: list[ShardWorker] = []
        self._exit_codes: list[int] | None = None
        self._started = False

    # ----------------------------------------------------------- construction
    def _worker_command(self, index: int) -> tuple[list[str], str | None]:
        port = 0 if self.base_port == 0 else self.base_port + index
        command = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            self.host,
            "--port",
            str(port),
            "--shards",
            "1",
            "--backend",
            self.backend,
            "--seed",
            str(self.seed),
            "--max-live-sessions",
            str(self.max_live_sessions),
            "--max-pending",
            str(self.max_pending),
            "--worker-threads",
            str(self.worker_threads),
            "--wire-codec",
            self.wire_codec,
        ]
        db_path: str | None = None
        if self.db_path is not None:
            db_path = shard_db_path(self.db_path, index)
            command += ["--db-path", db_path]
        if self.max_pending_per_channel is not None:
            command += ["--max-pending-per-channel", str(self.max_pending_per_channel)]
        if self.checkpoint_every is not None:
            command += ["--checkpoint-every", str(self.checkpoint_every)]
        if self.live_k is not None:
            command += ["--k", str(self.live_k)]
        return command, db_path

    def _child_env(self) -> dict[str, str]:
        """The child environment, with ``repro`` guaranteed importable."""
        env = dict(os.environ)
        src_dir = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src_dir if not existing else os.pathsep.join([src_dir, existing])
        return env

    # -------------------------------------------------------------- lifecycle
    def start(self) -> "ShardClusterSupervisor":
        """Spawn every worker and wait for the whole cluster to be ready.

        Readiness is two barriers per worker: the ``listening on host:port``
        stdout line (which resolves ephemeral ports), then ``/healthz``
        answering over the wire.  Any worker dying — or the
        ``boot_timeout`` expiring — before both barriers tears the whole
        cluster down and raises with the failing worker's output tail.
        """
        if self._started:
            raise ValidationError("cluster already started")
        self._started = True
        env = self._child_env()
        deadline = time.monotonic() + self.boot_timeout
        try:
            for index in range(self.n_shards):
                command, db_path = self._worker_command(index)
                worker = ShardWorker(index, command, db_path)
                worker.spawn(env)
                self.workers.append(worker)
            for worker in self.workers:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not worker.ready.wait(timeout=remaining):
                    raise RuntimeError(
                        f"shard {worker.index} did not report readiness within "
                        f"{self.boot_timeout:g}s; its output was:\n{worker.log_tail()}"
                    )
                if worker.port is None:
                    # The pump hit EOF before a listening line: the child died
                    # during boot (bad flags, bound port taken, poisoned db).
                    worker.process.wait()
                    raise RuntimeError(
                        f"shard {worker.index} exited with code "
                        f"{worker.process.returncode} during boot; its output "
                        f"was:\n{worker.log_tail()}"
                    )
            self._health_barrier(deadline)
        except BaseException:
            self._teardown_hard()
            raise
        _LOGGER.info(
            "cluster up: %d shard worker(s) at %s",
            self.n_shards,
            ", ".join(f"{w.host}:{w.port}" for w in self.workers),
        )
        return self

    def _health_barrier(self, deadline: float) -> None:
        """Block until every worker's ``/healthz`` answers (or the deadline)."""
        for worker in self.workers:
            client = LightorClient(worker.host, worker.port, timeout=self.client_timeout)
            try:
                while True:
                    if not worker.alive:
                        worker.process.wait()
                        raise RuntimeError(
                            f"shard {worker.index} exited with code "
                            f"{worker.process.returncode} before /healthz answered; "
                            f"its output was:\n{worker.log_tail()}"
                        )
                    try:
                        payload = client.healthz()
                        if payload.get("status") == "ok":
                            break
                    except OSError:
                        pass
                    if time.monotonic() >= deadline:
                        raise RuntimeError(
                            f"shard {worker.index} at {worker.host}:{worker.port} "
                            f"did not answer /healthz within {self.boot_timeout:g}s"
                        )
                    time.sleep(0.05)
            finally:
                client.close()

    def _teardown_hard(self) -> None:
        """Boot-failure cleanup: no drain, just make every child gone."""
        for worker in self.workers:
            if worker.alive:
                worker.process.terminate()
        for worker in self.workers:
            if worker.process is None:
                continue
            try:
                worker.process.wait(timeout=5)
            except subprocess.TimeoutExpired:
                worker.process.kill()
                worker.process.wait()
            worker.join_pump()

    def dead_shards(self) -> list[int]:
        """Indices of workers that have exited (empty on a healthy cluster).

        The mid-run supervision hook: ``repro cluster`` polls it and fails
        the deployment when a worker dies underneath the front door.
        """
        if self._exit_codes is not None:
            return []
        return [worker.index for worker in self.workers if not worker.alive]

    def stop(self, timeout: float = 30.0) -> list[int]:
        """SIGTERM every worker and wait; returns their exit codes.

        SIGTERM is the graceful path: each worker drains its gateway and —
        on a durable backend — suspends its sessions (checkpoint and
        release), so the cluster's databases resume byte-exactly via
        ``repro recover``.  A worker that ignores the deadline is killed
        (exit code < 0).  Idempotent: the first result is cached, and a
        worker that already exited just contributes its code.
        """
        if self._exit_codes is not None:
            return self._exit_codes
        codes: list[int] = []
        for worker in self.workers:
            if worker.alive:
                worker.process.terminate()
        for worker in self.workers:
            if worker.process is None:
                codes.append(-1)
                continue
            try:
                worker.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                _LOGGER.warning(
                    "shard %d ignored SIGTERM for %gs; killing", worker.index, timeout
                )
                worker.process.kill()
                worker.process.wait()
            worker.join_pump()
            codes.append(worker.process.returncode)
        self._exit_codes = codes
        return codes

    # ---------------------------------------------------------------- routing
    @property
    def addresses(self) -> list[tuple[str, int]]:
        """``(host, port)`` per worker, in shard order (after :meth:`start`)."""
        return [(worker.host, worker.port) for worker in self.workers]

    def front_door(self) -> "ClusterFrontDoor":
        """A new :class:`ClusterFrontDoor` over this cluster's workers.

        Each call builds an independent front door (own sockets, own
        placement memo) — hand one to each thread that needs the cluster.
        """
        return ClusterFrontDoor(
            self.addresses,
            replicas=self.replicas,
            timeout=self.client_timeout,
            wire_codec=self.wire_codec,
        )

    def __enter__(self) -> "ShardClusterSupervisor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class _RemoteStoreView:
    """Read-only facade over one shard's persisted state, via its gateway.

    Quacks like the slice of :class:`~repro.platform.backends.base.StorageBackend`
    the load harness's fingerprint reads, so
    ``ClusterFrontDoor.store_for(video_id)`` drops into code written against
    the in-process front door — but every read crosses the wire, which is
    the point: parity checks must see exactly what the shard *process*
    persisted, not some local replica.
    """

    def __init__(self, client: LightorClient) -> None:
        self._client = client

    def get_red_dots(self, video_id: str) -> list[RedDot]:
        return self._client.get_red_dots(video_id)

    def latest_highlights(self, video_id: str) -> list[Highlight]:
        return self._client.latest_highlights(video_id)

    def highlight_history(self, video_id: str) -> list[HighlightRecord]:
        return self._client.highlight_history(video_id)

    def get_interactions(self, video_id: str) -> list[Interaction]:
        return self._client.get_interactions(video_id)


class ClusterFrontDoor:
    """Route the service surface to shard processes by consistent hash.

    The wire twin of :class:`~repro.platform.sharding.ShardedLightorService`:
    same ring, same placement, same method surface — callers written against
    the in-process front door (the load generator above all) drive a
    process cluster unchanged.  One kept-alive
    :class:`~repro.platform.client.LightorClient` per shard; like the
    client itself, a front door is **not** thread-safe — build one per
    thread via :meth:`clone` (or
    :meth:`ShardClusterSupervisor.front_door`).
    """

    def __init__(
        self,
        addresses: Sequence[tuple[str, int]],
        *,
        replicas: int = 64,
        timeout: float = 60.0,
        wire_codec: str = "json",
    ) -> None:
        if not addresses:
            raise ValidationError("a cluster front door needs at least one shard address")
        self.addresses = [(str(host), int(port)) for host, port in addresses]
        self._replicas = replicas
        self._timeout = timeout
        self.wire_codec = wire_codec
        self._ring = ConsistentHashRing(len(self.addresses), replicas=replicas)
        self._clients = [
            LightorClient(host, port, timeout=timeout, wire_codec=wire_codec)
            for host, port in self.addresses
        ]
        # Same memoization contract as the in-process front door: the ring is
        # immutable, so per-id lookups are cached with a bounded clear-on-full
        # dict (placements are pure recomputation).
        self._placements: dict[str, int] = {}
        self._placements_max = 4096

    # ----------------------------------------------------------------- routing
    @property
    def n_shards(self) -> int:
        """Number of shard processes behind the front door."""
        return len(self._clients)

    def shard_index(self, video_id: str) -> int:
        """The shard that owns ``video_id`` (identical to the in-process ring)."""
        index = self._placements.get(video_id)
        if index is None:
            index = self._ring.shard_for(video_id)
            if len(self._placements) >= self._placements_max:
                self._placements.clear()
            self._placements[video_id] = index
        return index

    def client_for(self, video_id: str) -> LightorClient:
        """The wire client of the shard owning ``video_id``."""
        return self._clients[self.shard_index(video_id)]

    def store_for(self, video_id: str) -> _RemoteStoreView:
        """A read-only view of the owning shard's persisted state."""
        return _RemoteStoreView(self.client_for(video_id))

    def clone(self) -> "ClusterFrontDoor":
        """An independent front door over the same shards (for another thread)."""
        return ClusterFrontDoor(
            self.addresses,
            replicas=self._replicas,
            timeout=self._timeout,
            wire_codec=self.wire_codec,
        )

    # ------------------------------------------------------------ batch surface
    def register_video(self, video: Video) -> None:
        """Store video metadata on its home shard (no live session opened)."""
        self.client_for(video.video_id).register_video(video)

    def request_red_dots(self, video_id: str, k: int | None = None) -> list[RedDot]:
        """Red dots for a recorded video, computed by its home shard."""
        return self.client_for(video_id).request_red_dots(video_id, k=k)

    def log_interactions(self, video_id: str, interactions: Sequence[Interaction]) -> int:
        """Persist viewer interactions on the video's home shard."""
        return self.client_for(video_id).log_interactions(video_id, interactions)

    def refine_video(self, video_id: str) -> int:
        """Run one Extractor refinement pass on the video's home shard."""
        return self.client_for(video_id).refine_video(video_id)

    def get_red_dots(self, video_id: str) -> list[RedDot]:
        """The stored red dots for a video (its home shard's backend)."""
        return self.client_for(video_id).get_red_dots(video_id)

    def latest_highlights(self, video_id: str) -> list[Highlight]:
        """The most recent stored highlight per area for a video."""
        return self.client_for(video_id).latest_highlights(video_id)

    def highlight_history(self, video_id: str) -> list[HighlightRecord]:
        """Every stored highlight record for a video, in version order."""
        return self.client_for(video_id).highlight_history(video_id)

    def get_interactions(self, video_id: str) -> list[Interaction]:
        """The stored viewer interactions for a video, in insertion order."""
        return self.client_for(video_id).get_interactions(video_id)

    # ------------------------------------------------------------- live surface
    def start_live(self, video: Video) -> None:
        """Register a live channel and open its session on its home shard."""
        self.client_for(video.video_id).start_live(video)

    def ingest_live_chat(
        self, video_id: str, messages: Sequence[ChatMessage]
    ) -> list[StreamEvent]:
        """Push live chat to the channel's home shard."""
        return self.client_for(video_id).ingest_live_chat(video_id, messages)

    def ingest_chat_batch(
        self, video_id: str, messages: Sequence[ChatMessage], persist: bool = False
    ) -> list[StreamEvent]:
        """Push a chat batch to the channel's home shard (one request per batch)."""
        return self.client_for(video_id).ingest_chat_batch(
            video_id, messages, persist=persist
        )

    def ingest_live_interactions(
        self, video_id: str, interactions: Sequence[Interaction]
    ) -> list[StreamEvent]:
        """Push live viewer interactions to the channel's home shard."""
        return self.client_for(video_id).ingest_live_interactions(video_id, interactions)

    def ingest_plays_batch(
        self, video_id: str, interactions: Sequence[Interaction]
    ) -> list[StreamEvent]:
        """Push a viewer-interaction batch to the channel's home shard."""
        return self.client_for(video_id).ingest_plays_batch(video_id, interactions)

    def live_red_dots(self, video_id: str) -> list[RedDot]:
        """The dots to render right now for a channel (live or persisted)."""
        return self.client_for(video_id).live_red_dots(video_id)

    def end_live(self, video_id: str, duration: float | None = None) -> list[RedDot]:
        """Close a live channel on its home shard; final dots are persisted."""
        return self.client_for(video_id).end_live(video_id, duration)

    # ----------------------------------------------------------- observability
    def healthz(self) -> list[dict]:
        """Every shard's health payload, in shard order."""
        return [client.healthz() for client in self._clients]

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release every kept-alive connection.

        Closes only the front door's sockets — the shard *processes* belong
        to the supervisor (``stop()`` drains and checkpoints them).  Safe to
        call more than once, matching the in-process front door's contract
        that the load harness may close the service it drove.
        """
        for client in self._clients:
            client.close()

    def __enter__(self) -> "ClusterFrontDoor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
