"""Sharded front door for the LIGHTOR service tier.

One :class:`~repro.platform.service.LightorWebService` worker serves one
store with one streaming orchestrator.  Production traffic — many concurrent
Twitch channels, batch red-dot requests and live ingest interleaved — needs
more than one worker, so :class:`ShardedLightorService` routes video/channel
ids across ``N`` workers, each owning its own storage backend, chat crawler
and :class:`~repro.streaming.session.StreamOrchestrator`.

Routing goes through a shared :class:`~repro.platform.placement.PlacementMap`
— the versioned control plane that replaced the static hash ring of earlier
revisions.  At epoch 0 the map delegates to the same
:class:`~repro.platform.placement.ConsistentHashRing` (virtual nodes over a
stable digest), so placement is deterministic across processes and
byte-identical to the pre-placement front door; epoch bumps — a completed
:meth:`~ShardedLightorService.migrate_channel`, a
:meth:`~ShardedLightorService.reshard` — invalidate every router's placement
memo at once.

Every call for a video id is routed to its home shard and executed under
that shard's re-entrant lock, which makes interleaved batch requests and
live ingest thread-safe per shard while leaving the other shards fully
concurrent.  Because placement can now *change* while calls are in flight,
the router re-checks the placement after acquiring the shard lock and
re-routes if a migration moved the channel in between (migrations hold both
shard locks, so a call that owns the lock can never observe a half-moved
channel).  The batched ingest surface (``ingest_chat_batch`` /
``ingest_plays_batch``) holds the lock once per batch instead of once per
event — under load that is the difference between convoying on the shard
lock per message and contending once per hundreds of messages.

Because every worker runs the same deterministic engines, a sharded service
fed a given workload produces byte-identical red dots and highlight records
to a single worker fed the same workload — even when channels are migrated
or the whole deployment is resharded mid-run.  ``tests/test_sharding.py``
and ``tests/test_resharding.py`` hold it to that.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.core.config import LightorConfig
from repro.core.initializer.initializer import HighlightInitializer
from repro.core.types import ChatMessage, Highlight, Interaction, RedDot, Video
from repro.platform.api import SimulatedStreamingAPI
from repro.platform.backends import (
    HighlightRecord,
    MEMORY_DB_PATH,
    SQLiteStore,
    StorageBackend,
    create_backend,
    is_memory_path,
)
from repro.platform.crawler import ChatCrawler
from repro.platform.placement import ConsistentHashRing, PlacementMap
from repro.platform.service import LightorWebService
from repro.streaming.events import StreamEvent
from repro.utils.rng import SeedSequenceFactory
from repro.utils.validation import ValidationError, require_positive

__all__ = [
    "ChannelMigration",
    "ConsistentHashRing",
    "ReshardReport",
    "ShardedLightorService",
    "shard_db_path",
]


def shard_db_path(path: str | Path, shard_index: int) -> str:
    """The per-shard database path derived from a base path.

    ``highlights.db`` becomes ``highlights.shard0.db``, ``highlights.shard1.db``
    … so each shard's SQLite backend owns its own file (one writer per file).
    Suffix-less paths gain only the shard part (``highlights`` →
    ``highlights.shard0``), and ``":memory:"`` — as a ``str`` or a ``Path`` —
    is passed through untouched: suffixing it would silently turn the
    in-process database into a stray file literally named ``:memory:.shard0``.
    """
    if is_memory_path(path):
        return MEMORY_DB_PATH
    base = Path(path)
    return str(base.with_name(f"{base.stem}.shard{shard_index}{base.suffix}"))


@dataclass(frozen=True)
class ChannelMigration:
    """The outcome of one :meth:`ShardedLightorService.migrate_channel`.

    ``seconds`` is the channel's unavailability window: the wall-clock time
    both shard locks were held while the channel's rows and live session
    moved.  ``moved`` is False when the channel already lived on the
    destination and nothing happened.
    """

    video_id: str
    src: int
    dst: int
    was_live: bool
    seconds: float
    moved: bool = True


@dataclass(frozen=True)
class ReshardReport:
    """The outcome of one :meth:`ShardedLightorService.reshard`."""

    old_n_shards: int
    new_n_shards: int
    epoch: int
    migrations: list[ChannelMigration] = field(default_factory=list)

    @property
    def moved(self) -> int:
        """Number of channels that actually changed shards."""
        return sum(1 for m in self.migrations if m.moved)

    def pause_seconds(self) -> list[float]:
        """Per-channel unavailability windows, one per completed move."""
        return [m.seconds for m in self.migrations if m.moved]


class ShardedLightorService:
    """Placement-routed front door over ``N`` independent service workers.

    Parameters
    ----------
    shards:
        The worker services.  Each must own its *own* store and orchestrator;
        sharing a backend between workers would break the one-writer-per-
        shard locking discipline.
    replicas:
        Virtual nodes per shard on the placement map's hash ring (ignored
        when ``placement`` is given).
    placement:
        An existing :class:`~repro.platform.placement.PlacementMap` to route
        through — the cluster supervisor shares one map between the sharded
        service and the front door.  Built fresh (epoch 0) when omitted.
    """

    def __init__(
        self,
        shards: Sequence[LightorWebService],
        replicas: int = 64,
        placement: PlacementMap | None = None,
    ) -> None:
        if not shards:
            raise ValidationError("a sharded service needs at least one shard")
        self.shards: list[LightorWebService] = list(shards)
        if placement is None:
            placement = PlacementMap(len(self.shards), replicas=replicas)
        elif placement.n_shards != len(self.shards):
            raise ValidationError(
                f"placement map covers {placement.n_shards} shards but "
                f"{len(self.shards)} workers were given"
            )
        self.placement = placement
        self._locks = [threading.RLock() for _ in self.shards]
        # Set by create(): rebuilds a worker for a given (shard_index,
        # n_shards) — the grow path of reshard() needs it to stamp out new
        # shards mid-run with the marker check run against the *new* count.
        self._shard_builder: Callable[[int, int], LightorWebService] | None = None

    # ------------------------------------------------------------- construction
    @classmethod
    def create(
        cls,
        n_shards: int,
        initializer: HighlightInitializer,
        *,
        api: SimulatedStreamingAPI | None = None,
        backend: str = "memory",
        db_path: str | Path | None = None,
        config: LightorConfig | None = None,
        replicas: int = 64,
        backend_factory: Callable[[int], StorageBackend] | None = None,
        **service_kwargs,
    ) -> "ShardedLightorService":
        """Stamp out ``n_shards`` workers over fresh per-shard backends.

        ``backend``/``db_path`` route through
        :func:`~repro.platform.backends.create_backend`; for a file-backed
        SQLite deployment each shard gets its own database file (see
        :func:`shard_db_path`).  ``backend_factory`` overrides both for
        custom wiring.  Extra keyword arguments (``max_live_sessions``,
        ``live_k``, ``live_policy``, …) are forwarded to every
        :class:`LightorWebService`.  The returned service remembers how to
        build a worker, so :meth:`reshard` can grow the deployment later.
        """
        require_positive(n_shards, "n_shards")
        if api is None:
            api = SimulatedStreamingAPI(seeds=SeedSequenceFactory(2020))
        if config is None:
            config = initializer.config

        def default_factory(shard_index: int) -> StorageBackend:
            # Always shard-suffix file paths (even for one shard) so the ring
            # marker is checked on every reuse — switching between 1 and N
            # shards must not silently leave history behind in another file.
            # ``:memory:`` (str or Path) is not a file path: each shard gets
            # its own private in-memory database without any suffixing.
            if backend == "sqlite" and db_path is not None and not is_memory_path(db_path):
                return create_backend(backend, shard_db_path(db_path, shard_index))
            return create_backend(backend, db_path)

        factory = backend_factory if backend_factory is not None else default_factory
        check_marker = (
            backend_factory is None
            and backend == "sqlite"
            and db_path is not None
            and not is_memory_path(db_path)
        )

        def build_shard(shard_index: int, n_shards_now: int) -> LightorWebService:
            # n_shards_now is the deployment size *at build time* — the
            # original count during create(), the grown count when reshard()
            # stamps out a new shard mid-run — so a freshly created shard's
            # marker always records the ring it actually joins.
            store = factory(shard_index)
            try:
                if check_marker:
                    cls._check_shard_marker(store, shard_index, n_shards_now)
                return LightorWebService(
                    store=store,
                    crawler=ChatCrawler(api=api, store=store),
                    initializer=initializer,
                    config=config,
                    **service_kwargs,
                )
            except BaseException:
                store.close()
                raise

        shards: list[LightorWebService] = []
        try:
            for shard_index in range(n_shards):
                shards.append(build_shard(shard_index, n_shards))
        except BaseException:
            for built in shards:
                built.store.close()
            raise
        service = cls(shards, replicas=replicas)
        service._shard_builder = build_shard
        return service

    @staticmethod
    def _check_shard_marker(store: StorageBackend, shard_index: int, n_shards: int) -> None:
        """Refuse to reuse database files created for a different ring.

        Re-homing video ids without migrating the rows would silently split
        each video's history across files, so a shard-count mismatch is an
        error rather than a corruption — :meth:`reshard` is the sanctioned
        way to change the count, and it rewrites these markers after moving
        the rows.
        """
        if not isinstance(store, SQLiteStore):
            return
        recorded = store.get_meta("n_shards")
        if recorded is not None and int(recorded) != n_shards:
            raise ValidationError(
                f"database {store.path!r} belongs to a {recorded}-shard deployment; "
                f"rerun with that shard count, reshard it, or use a fresh path"
            )
        store.set_meta("n_shards", str(n_shards))
        store.set_meta("shard_index", str(shard_index))

    def _rewrite_shard_markers(self) -> None:
        """Stamp every surviving durable shard with the current ring size.

        The satellite of a completed reshard: without this, the next
        ``create()`` over the same files would reject them as belonging to
        the pre-reshard deployment (stale-marker-after-shrink).
        """
        for index, shard in enumerate(self.shards):
            store = shard.store
            if isinstance(store, SQLiteStore) and not is_memory_path(store.path):
                store.set_meta("n_shards", str(len(self.shards)))
                store.set_meta("shard_index", str(index))

    # ----------------------------------------------------------------- routing
    @property
    def n_shards(self) -> int:
        """Number of workers behind the front door."""
        return len(self.shards)

    @property
    def epoch(self) -> int:
        """The placement epoch this front door is routing at."""
        return self.placement.epoch

    def shard_index(self, video_id: str) -> int:
        """The shard that owns ``video_id`` (this instant's placement)."""
        return self.placement.shard_for(video_id)

    def shard_for(self, video_id: str) -> LightorWebService:
        """The worker service that owns ``video_id``."""
        return self.shards[self.placement.shard_for(video_id)]

    def store_for(self, video_id: str) -> StorageBackend:
        """The storage backend that owns ``video_id``."""
        return self.shard_for(video_id).store

    @contextmanager
    def _routed(self, video_id: str):
        """The owning worker, locked, placement-stable for the block.

        Acquire-then-recheck: placement is read, the shard lock taken, and
        placement read *again* — a migration that moved the channel between
        the two reads (it commits the new epoch while holding both shard
        locks, which we did not hold yet) sends the call around the loop to
        the new home.  Once the re-check passes, the channel cannot move for
        the duration of the block because any migration needs this lock.
        """
        while True:
            index = self.placement.shard_for(video_id)
            lock = self._locks[index]
            lock.acquire()
            if self.placement.shard_for(video_id) == index:
                try:
                    yield self.shards[index]
                finally:
                    lock.release()
                return
            lock.release()

    # ------------------------------------------------------------ batch surface
    def register_video(self, video: Video) -> None:
        """Store video metadata on its home shard (no live session opened)."""
        with self._routed(video.video_id) as shard:
            shard.store.put_video(video)

    def request_red_dots(self, video_id: str, k: int | None = None) -> list[RedDot]:
        """Red dots for a recorded video, served by its home shard."""
        with self._routed(video_id) as shard:
            return shard.request_red_dots(video_id, k=k)

    def log_interactions(self, video_id: str, interactions: Sequence[Interaction]) -> int:
        """Persist viewer interactions on the video's home shard."""
        with self._routed(video_id) as shard:
            return shard.log_interactions(video_id, interactions)

    def refine_video(self, video_id: str) -> int:
        """Run one Extractor refinement pass on the video's home shard."""
        with self._routed(video_id) as shard:
            return shard.refine_video(video_id)

    def get_red_dots(self, video_id: str) -> list[RedDot]:
        """The stored red dots for a video (its home shard's backend)."""
        with self._routed(video_id) as shard:
            return shard.store.get_red_dots(video_id)

    def latest_highlights(self, video_id: str) -> list[Highlight]:
        """The most recent stored highlight per area for a video."""
        with self._routed(video_id) as shard:
            return shard.store.latest_highlights(video_id)

    def highlight_history(self, video_id: str) -> list[HighlightRecord]:
        """Every stored highlight record for a video, in version order."""
        with self._routed(video_id) as shard:
            return shard.store.highlight_history(video_id)

    def get_interactions(self, video_id: str) -> list[Interaction]:
        """The stored viewer interactions for a video, in insertion order."""
        with self._routed(video_id) as shard:
            return shard.store.get_interactions(video_id)

    # ------------------------------------------------------------- live surface
    def start_live(self, video: Video) -> None:
        """Register a live channel and open its session on its home shard."""
        with self._routed(video.video_id) as shard:
            shard.start_live(video)

    def ingest_live_chat(
        self, video_id: str, messages: Sequence[ChatMessage]
    ) -> list[StreamEvent]:
        """Push live chat to the channel's home shard."""
        with self._routed(video_id) as shard:
            return shard.ingest_live_chat(video_id, messages)

    def ingest_chat_batch(
        self, video_id: str, messages: Sequence[ChatMessage], persist: bool = False
    ) -> list[StreamEvent]:
        """Push a chat batch to the channel's home shard.

        One placement lookup and one lock acquisition cover the whole batch —
        under load this is the difference between contending on the shard
        lock per message and contending once per hundreds of messages.
        """
        with self._routed(video_id) as shard:
            return shard.ingest_chat_batch(video_id, messages, persist=persist)

    def ingest_live_interactions(
        self, video_id: str, interactions: Sequence[Interaction]
    ) -> list[StreamEvent]:
        """Push live viewer interactions to the channel's home shard."""
        with self._routed(video_id) as shard:
            return shard.ingest_live_interactions(video_id, interactions)

    def ingest_plays_batch(
        self, video_id: str, interactions: Sequence[Interaction]
    ) -> list[StreamEvent]:
        """Push a viewer-interaction batch to the channel's home shard.

        One lock acquisition and one store append (a single transaction on
        durable backends) per batch per shard.
        """
        with self._routed(video_id) as shard:
            return shard.ingest_plays_batch(video_id, interactions)

    def live_red_dots(self, video_id: str) -> list[RedDot]:
        """The dots to render right now for a channel (live or persisted)."""
        with self._routed(video_id) as shard:
            return shard.live_red_dots(video_id)

    def end_live(self, video_id: str, duration: float | None = None) -> list[RedDot]:
        """Close a live channel on its home shard; final dots are persisted."""
        with self._routed(video_id) as shard:
            return shard.end_live(video_id, duration)

    def recover_live_sessions(self) -> list:
        """Rebuild every shard's open sessions from their durable checkpoints.

        The sharded twin of
        :meth:`~repro.platform.service.LightorWebService.recover_live_sessions`:
        each shard recovers from its *own* backend under its own lock, and
        because the placement map routes byte-identically across processes at
        a given epoch, a channel recovers on exactly the shard that
        checkpointed it.  Returns the merged
        :class:`~repro.platform.recovery.RecoveredSession` reports, ordered
        by video id.
        """
        recovered = []
        for shard, lock in zip(self.shards, self._locks):
            with lock:
                recovered.extend(shard.recover_live_sessions())
        return sorted(recovered, key=lambda report: report.video_id)

    # --------------------------------------------------------------- migration
    def list_channels(self) -> list[str]:
        """Every stored channel id across all shards, sorted."""
        ids: set[str] = set()
        for shard, lock in zip(self.shards, self._locks):
            with lock:
                ids.update(video.video_id for video in shard.store.list_videos())
        return sorted(ids)

    def migrate_out(self, video_id: str) -> dict:
        """Detach and export one channel for a cross-process migration.

        Step one of the cluster's three-step choreography (out → in →
        forget): the live session (if any) is checkpointed and dropped, and
        the channel's complete stored state is returned as a strict-JSON
        bundle.  The rows stay on this worker until :meth:`forget_channel` —
        a crash between the steps loses nothing.
        """
        with self._routed(video_id) as shard:
            was_live = shard.detach_channel(video_id)
            return {"bundle": shard.store.export_channel(video_id), "was_live": was_live}

    def import_channel(self, bundle: dict, was_live: bool = False) -> str:
        """Import a :meth:`migrate_out` bundle onto this deployment.

        Step two of the choreography, run on the destination worker: the
        rows are recreated through the ordinary write primitives and — when
        the source reported the channel live — its session is resumed from
        the bundled checkpoint via the recovery path.
        """
        video_id = bundle["video"]["video_id"]
        with self._routed(video_id) as shard:
            shard.store.import_channel(bundle)
            if was_live:
                shard.attach_channel(video_id)
        return video_id

    def forget_channel(self, video_id: str) -> bool:
        """Drop every stored row for a channel (migration source cleanup).

        Step three of the choreography: only called after the destination
        confirmed the import, so deleting here cannot lose data.  Returns
        whether the channel existed.
        """
        with self._routed(video_id) as shard:
            existed = shard.store.delete_channel(video_id)
            shard._drop_checkpoint_state(video_id)
            return existed

    def migrate_channel(self, video_id: str, dst_shard: int) -> ChannelMigration:
        """Move one channel — rows and live session — to another shard.

        The in-process data plane: suspend-checkpoint on the source (no
        finalize, so stored dots survive), bundle export, import + snapshot
        resume on the destination (exactly the ``repro recover`` path), then
        source cleanup and a placement epoch bump.  Both shard locks are held
        for the duration, ordered by index to stay deadlock-free against
        concurrent migrations; traffic for *other* channels on either shard
        waits only for this channel's move (the measured ``seconds`` window),
        and traffic for this channel re-routes via :meth:`_routed`'s
        re-check when the locks release.
        """
        if not 0 <= dst_shard < len(self.shards):
            raise ValidationError(
                f"dst_shard must name one of {len(self.shards)} shards, got {dst_shard!r}"
            )
        while True:
            src = self.placement.shard_for(video_id)
            if src == dst_shard:
                return ChannelMigration(
                    video_id=video_id, src=src, dst=dst_shard,
                    was_live=False, seconds=0.0, moved=False,
                )
            first, second = sorted((src, dst_shard))
            with self._locks[first], self._locks[second]:
                if self.placement.shard_for(video_id) != src:
                    continue  # moved underneath us; re-route and retry
                started = time.perf_counter()
                self.placement.begin_migration(video_id)
                source, destination = self.shards[src], self.shards[dst_shard]
                try:
                    if not source.store.has_video(video_id):
                        raise ValidationError(
                            f"channel {video_id!r} has no stored rows on shard {src}; "
                            "register or start it before migrating"
                        )
                    was_live = source.detach_channel(video_id)
                    destination.store.import_channel(source.store.export_channel(video_id))
                    if was_live:
                        destination.attach_channel(video_id)
                    source.store.delete_channel(video_id)
                    source._drop_checkpoint_state(video_id)
                except BaseException:
                    self.placement.abort_migration(video_id)
                    raise
                self.placement.complete_migration(video_id, dst_shard)
                return ChannelMigration(
                    video_id=video_id, src=src, dst=dst_shard,
                    was_live=was_live, seconds=time.perf_counter() - started,
                )

    def reshard(self, new_n_shards: int) -> ReshardReport:
        """Online reshard: move to a ``new_n_shards``-worker deployment.

        A planned sequence of :meth:`migrate_channel` calls: on a grow, the
        new workers are stamped out first (via the builder ``create()``
        retained, with the marker check run against the *new* count); the
        placement map plans the minimal move set; each moved channel drains
        through the ordinary migration path while unmoved channels keep
        serving; then the ring is swapped (:meth:`PlacementMap.commit_reshard`),
        drained workers are shut down on a shrink, and surviving durable
        shards get their markers rewritten.  Callers keep calling through
        this front door the whole time.
        """
        require_positive(new_n_shards, "new_n_shards")
        old_n_shards = len(self.shards)
        if new_n_shards == old_n_shards:
            return ReshardReport(
                old_n_shards=old_n_shards,
                new_n_shards=new_n_shards,
                epoch=self.placement.epoch,
            )
        if new_n_shards > old_n_shards:
            if self._shard_builder is None:
                raise ValidationError(
                    "this sharded service was built from pre-made workers; "
                    "growing needs the shard builder create() retains"
                )
            for index in range(old_n_shards, new_n_shards):
                self.shards.append(self._shard_builder(index, new_n_shards))
                self._locks.append(threading.RLock())
        # Bulk phase: drain the planned channel set with no global barrier —
        # unmoved channels keep serving, only the channel in flight pauses.
        plan = self.placement.plan_reshard(self.list_channels(), new_n_shards)
        migrations = [self.migrate_channel(move.video_id, move.dst) for move in plan]
        # Commit barrier: a channel created *during* the bulk phase was
        # placed by the old ring and would be stranded by the ring swap
        # (its traffic re-routes, its rows do not).  Holding every shard
        # lock excludes all channel creation — start_live runs under
        # _routed — so a census taken here is complete; sweep the
        # stragglers (the locks are re-entrant) and swap the ring before
        # anything else can run.  The barrier lasts one sweep, not the
        # bulk migrations.
        locks = list(self._locks)
        for lock in locks:
            lock.acquire()
        try:
            follow_up = self.placement.plan_reshard(self.list_channels(), new_n_shards)
            migrations.extend(
                self.migrate_channel(move.video_id, move.dst) for move in follow_up
            )
            epoch = self.placement.commit_reshard(new_n_shards)
        finally:
            for lock in reversed(locks):
                lock.release()
        if new_n_shards < old_n_shards:
            drained = self.shards[new_n_shards:]
            del self.shards[new_n_shards:]
            del self._locks[new_n_shards:]
            for shard in drained:
                store = shard.store
                if isinstance(store, SQLiteStore) and not is_memory_path(store.path):
                    # The drained file belongs to no deployment any more;
                    # clearing its marker lets a later grow adopt the (now
                    # channel-empty) file instead of refusing it as stale.
                    store.delete_meta("n_shards")
                    store.delete_meta("shard_index")
                shard.shutdown()
        self._rewrite_shard_markers()
        return ReshardReport(
            old_n_shards=old_n_shards,
            new_n_shards=new_n_shards,
            epoch=epoch,
            migrations=migrations,
        )

    # ----------------------------------------------------------------- summary
    def db_paths(self) -> list[str]:
        """Database files behind the shards (empty for non-durable backends)."""
        return [
            shard.store.path
            for shard in self.shards
            if isinstance(shard.store, SQLiteStore) and not is_memory_path(shard.store.path)
        ]

    def stats(self) -> dict[str, int]:
        """Store row counts summed across shards (plus shard count and epoch)."""
        totals: dict[str, int] = {
            "shards": self.n_shards,
            "placement_epoch": self.placement.epoch,
        }
        for shard, lock in zip(self.shards, self._locks):
            with lock:
                for key, value in shard.store.stats().items():
                    totals[key] = totals.get(key, 0) + value
        return totals

    def suspend(self) -> int:
        """Checkpoint every shard's open sessions and release the backends.

        The sharded twin of
        :meth:`~repro.platform.service.LightorWebService.suspend` — the
        graceful-drain counterpart of :meth:`close`: nothing is finalized, so
        a durable deployment can be resumed byte-exactly with
        :meth:`recover_live_sessions` (``repro recover``).  Returns the total
        number of sessions checkpointed.  Like :meth:`close`, every shard is
        suspended even when one raises; the first error is re-raised at the
        end.
        """
        first_error: BaseException | None = None
        checkpointed = 0
        for shard, lock in zip(self.shards, self._locks):
            with lock:
                try:
                    checkpointed += shard.suspend()
                except BaseException as error:  # noqa: BLE001 - re-raised below
                    if first_error is None:
                        first_error = error
        if first_error is not None:
            raise first_error
        return checkpointed

    def close(self) -> None:
        """Shut down every shard: open live sessions are finalized (their
        results persist through the eviction callbacks) before the backends
        are released.

        A shard whose ``shutdown()`` raises must not abort the loop: the
        remaining shards still own live sessions and open backends, and
        skipping them would leak every one of their stores and silently drop
        their session finalization.  Every shard is therefore closed
        best-effort and the first error is re-raised once all of them have
        been given the chance.
        """
        first_error: BaseException | None = None
        for shard, lock in zip(self.shards, self._locks):
            with lock:
                try:
                    shard.shutdown()
                except BaseException as error:  # noqa: BLE001 - re-raised below
                    if first_error is None:
                        first_error = error
        if first_error is not None:
            raise first_error
