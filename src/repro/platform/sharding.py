"""Sharded front door for the LIGHTOR service tier.

One :class:`~repro.platform.service.LightorWebService` worker serves one
store with one streaming orchestrator.  Production traffic — many concurrent
Twitch channels, batch red-dot requests and live ingest interleaved — needs
more than one worker, so :class:`ShardedLightorService` consistent-hashes
video/channel ids across ``N`` workers, each owning its own storage backend,
chat crawler and :class:`~repro.streaming.session.StreamOrchestrator`.

Every call for a video id is routed to its home shard and executed under
that shard's re-entrant lock, which makes interleaved batch requests and
live ingest thread-safe per shard while leaving the other shards fully
concurrent.  The batched ingest surface (``ingest_chat_batch`` /
``ingest_plays_batch``) holds the lock once per batch instead of once per
event — under load that is the difference between convoying on the shard
lock per message and contending once per hundreds of messages.  The hash ring uses virtual nodes (``replicas`` points per
shard) over a stable digest, so the placement is deterministic across
processes and only ``~1/N`` of the keys move when a shard is added.

Because every worker runs the same deterministic engines, a sharded service
fed a given workload produces byte-identical red dots and highlight records
to a single worker fed the same workload — ``tests/test_sharding.py`` holds
it to that.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from pathlib import Path
from typing import Callable, Sequence

from repro.core.config import LightorConfig
from repro.core.initializer.initializer import HighlightInitializer
from repro.core.types import ChatMessage, Highlight, Interaction, RedDot, Video
from repro.platform.api import SimulatedStreamingAPI
from repro.platform.backends import (
    HighlightRecord,
    MEMORY_DB_PATH,
    SQLiteStore,
    StorageBackend,
    create_backend,
    is_memory_path,
)
from repro.platform.crawler import ChatCrawler
from repro.platform.service import LightorWebService
from repro.streaming.events import StreamEvent
from repro.utils.rng import SeedSequenceFactory
from repro.utils.validation import ValidationError, require_positive

__all__ = ["ConsistentHashRing", "ShardedLightorService", "shard_db_path"]


def _point(key: str) -> int:
    """A stable 64-bit ring coordinate for ``key`` (process-independent)."""
    digest = hashlib.md5(key.encode("utf-8"), usedforsecurity=False).digest()
    return int.from_bytes(digest[:8], "big")


class ConsistentHashRing:
    """Maps string keys onto ``n_shards`` buckets via consistent hashing.

    Each shard contributes ``replicas`` virtual nodes; a key belongs to the
    first virtual node clockwise from its own ring coordinate.
    """

    def __init__(self, n_shards: int, replicas: int = 64) -> None:
        require_positive(n_shards, "n_shards")
        require_positive(replicas, "replicas")
        self.n_shards = n_shards
        self.replicas = replicas
        points = [
            (_point(f"shard-{shard}#{replica}"), shard)
            for shard in range(n_shards)
            for replica in range(replicas)
        ]
        points.sort()
        self._points = [point for point, _ in points]
        self._shards = [shard for _, shard in points]

    def shard_for(self, key: str) -> int:
        """The shard index owning ``key``."""
        index = bisect.bisect_right(self._points, _point(key))
        if index == len(self._points):
            index = 0
        return self._shards[index]


def shard_db_path(path: str | Path, shard_index: int) -> str:
    """The per-shard database path derived from a base path.

    ``highlights.db`` becomes ``highlights.shard0.db``, ``highlights.shard1.db``
    … so each shard's SQLite backend owns its own file (one writer per file).
    Suffix-less paths gain only the shard part (``highlights`` →
    ``highlights.shard0``), and ``":memory:"`` — as a ``str`` or a ``Path`` —
    is passed through untouched: suffixing it would silently turn the
    in-process database into a stray file literally named ``:memory:.shard0``.
    """
    if is_memory_path(path):
        return MEMORY_DB_PATH
    base = Path(path)
    return str(base.with_name(f"{base.stem}.shard{shard_index}{base.suffix}"))


class ShardedLightorService:
    """Consistent-hash front door over ``N`` independent service workers.

    Parameters
    ----------
    shards:
        The worker services.  Each must own its *own* store and orchestrator;
        sharing a backend between workers would break the one-writer-per-
        shard locking discipline.
    replicas:
        Virtual nodes per shard on the hash ring.
    """

    def __init__(self, shards: Sequence[LightorWebService], replicas: int = 64) -> None:
        if not shards:
            raise ValidationError("a sharded service needs at least one shard")
        self.shards: list[LightorWebService] = list(shards)
        self._locks = [threading.RLock() for _ in self.shards]
        self._ring = ConsistentHashRing(len(self.shards), replicas=replicas)
        # The ring is immutable, so per-id lookups are memoized: live ingest
        # routes every single chat message and must not re-hash each time.
        # The memo has its own uncontended lock — shard locks are held for
        # whole storage calls and routing must never queue behind them.
        self._placements_lock = threading.Lock()
        self._placements: dict[str, int] = {}  # guarded-by: _placements_lock
        self._placements_max = 4096

    # ------------------------------------------------------------- construction
    @classmethod
    def create(
        cls,
        n_shards: int,
        initializer: HighlightInitializer,
        *,
        api: SimulatedStreamingAPI | None = None,
        backend: str = "memory",
        db_path: str | Path | None = None,
        config: LightorConfig | None = None,
        replicas: int = 64,
        backend_factory: Callable[[int], StorageBackend] | None = None,
        **service_kwargs,
    ) -> "ShardedLightorService":
        """Stamp out ``n_shards`` workers over fresh per-shard backends.

        ``backend``/``db_path`` route through
        :func:`~repro.platform.backends.create_backend`; for a file-backed
        SQLite deployment each shard gets its own database file (see
        :func:`shard_db_path`).  ``backend_factory`` overrides both for
        custom wiring.  Extra keyword arguments (``max_live_sessions``,
        ``live_k``, ``live_policy``, …) are forwarded to every
        :class:`LightorWebService`.
        """
        require_positive(n_shards, "n_shards")
        if api is None:
            api = SimulatedStreamingAPI(seeds=SeedSequenceFactory(2020))
        if config is None:
            config = initializer.config

        def default_factory(shard_index: int) -> StorageBackend:
            # Always shard-suffix file paths (even for one shard) so the ring
            # marker is checked on every reuse — switching between 1 and N
            # shards must not silently leave history behind in another file.
            # ``:memory:`` (str or Path) is not a file path: each shard gets
            # its own private in-memory database without any suffixing.
            if backend == "sqlite" and db_path is not None and not is_memory_path(db_path):
                return create_backend(backend, shard_db_path(db_path, shard_index))
            return create_backend(backend, db_path)

        factory = backend_factory if backend_factory is not None else default_factory
        shards: list[LightorWebService] = []
        try:
            for shard_index in range(n_shards):
                store = factory(shard_index)
                try:
                    if (
                        backend_factory is None
                        and backend == "sqlite"
                        and db_path is not None
                        and not is_memory_path(db_path)
                    ):
                        cls._check_shard_marker(store, shard_index, n_shards)
                    shards.append(
                        LightorWebService(
                            store=store,
                            crawler=ChatCrawler(api=api, store=store),
                            initializer=initializer,
                            config=config,
                            **service_kwargs,
                        )
                    )
                except BaseException:
                    store.close()
                    raise
        except BaseException:
            for built in shards:
                built.store.close()
            raise
        return cls(shards, replicas=replicas)

    @staticmethod
    def _check_shard_marker(store: StorageBackend, shard_index: int, n_shards: int) -> None:
        """Refuse to reuse database files created for a different ring.

        Re-homing video ids without migrating the rows would silently split
        each video's history across files, so a shard-count mismatch is an
        error rather than a corruption.
        """
        if not isinstance(store, SQLiteStore):
            return
        recorded = store.get_meta("n_shards")
        if recorded is not None and int(recorded) != n_shards:
            raise ValidationError(
                f"database {store.path!r} belongs to a {recorded}-shard deployment; "
                f"rerun with that shard count or use a fresh path"
            )
        store.set_meta("n_shards", str(n_shards))
        store.set_meta("shard_index", str(shard_index))

    # ----------------------------------------------------------------- routing
    @property
    def n_shards(self) -> int:
        """Number of workers behind the front door."""
        return len(self.shards)

    def shard_index(self, video_id: str) -> int:
        """The shard that owns ``video_id``."""
        with self._placements_lock:
            index = self._placements.get(video_id)
        if index is None:
            index = self._ring.shard_for(video_id)
            with self._placements_lock:
                if len(self._placements) >= self._placements_max:
                    # Placements are pure recomputation; a full cache is
                    # dropped rather than LRU-tracked to keep the hot path
                    # allocation-free.
                    self._placements.clear()
                self._placements[video_id] = index
        return index

    def shard_for(self, video_id: str) -> LightorWebService:
        """The worker service that owns ``video_id``."""
        return self.shards[self.shard_index(video_id)]

    def store_for(self, video_id: str) -> StorageBackend:
        """The storage backend that owns ``video_id``."""
        return self.shard_for(video_id).store

    def _route(self, video_id: str) -> tuple[threading.RLock, LightorWebService]:
        """One ring lookup for both the lock and the worker (hot path)."""
        index = self.shard_index(video_id)
        return self._locks[index], self.shards[index]

    # ------------------------------------------------------------ batch surface
    def register_video(self, video: Video) -> None:
        """Store video metadata on its home shard (no live session opened)."""
        lock, shard = self._route(video.video_id)
        with lock:
            shard.store.put_video(video)

    def request_red_dots(self, video_id: str, k: int | None = None) -> list[RedDot]:
        """Red dots for a recorded video, served by its home shard."""
        lock, shard = self._route(video_id)
        with lock:
            return shard.request_red_dots(video_id, k=k)

    def log_interactions(self, video_id: str, interactions: Sequence[Interaction]) -> int:
        """Persist viewer interactions on the video's home shard."""
        lock, shard = self._route(video_id)
        with lock:
            return shard.log_interactions(video_id, interactions)

    def refine_video(self, video_id: str) -> int:
        """Run one Extractor refinement pass on the video's home shard."""
        lock, shard = self._route(video_id)
        with lock:
            return shard.refine_video(video_id)

    def get_red_dots(self, video_id: str) -> list[RedDot]:
        """The stored red dots for a video (its home shard's backend)."""
        lock, shard = self._route(video_id)
        with lock:
            return shard.store.get_red_dots(video_id)

    def latest_highlights(self, video_id: str) -> list[Highlight]:
        """The most recent stored highlight per area for a video."""
        lock, shard = self._route(video_id)
        with lock:
            return shard.store.latest_highlights(video_id)

    def highlight_history(self, video_id: str) -> list[HighlightRecord]:
        """Every stored highlight record for a video, in version order."""
        lock, shard = self._route(video_id)
        with lock:
            return shard.store.highlight_history(video_id)

    def get_interactions(self, video_id: str) -> list[Interaction]:
        """The stored viewer interactions for a video, in insertion order."""
        lock, shard = self._route(video_id)
        with lock:
            return shard.store.get_interactions(video_id)

    # ------------------------------------------------------------- live surface
    def start_live(self, video: Video) -> None:
        """Register a live channel and open its session on its home shard."""
        lock, shard = self._route(video.video_id)
        with lock:
            shard.start_live(video)

    def ingest_live_chat(
        self, video_id: str, messages: Sequence[ChatMessage]
    ) -> list[StreamEvent]:
        """Push live chat to the channel's home shard."""
        lock, shard = self._route(video_id)
        with lock:
            return shard.ingest_live_chat(video_id, messages)

    def ingest_chat_batch(
        self, video_id: str, messages: Sequence[ChatMessage], persist: bool = False
    ) -> list[StreamEvent]:
        """Push a chat batch to the channel's home shard.

        One ring lookup and one lock acquisition cover the whole batch —
        under load this is the difference between contending on the shard
        lock per message and contending once per hundreds of messages.
        """
        lock, shard = self._route(video_id)
        with lock:
            return shard.ingest_chat_batch(video_id, messages, persist=persist)

    def ingest_live_interactions(
        self, video_id: str, interactions: Sequence[Interaction]
    ) -> list[StreamEvent]:
        """Push live viewer interactions to the channel's home shard."""
        lock, shard = self._route(video_id)
        with lock:
            return shard.ingest_live_interactions(video_id, interactions)

    def ingest_plays_batch(
        self, video_id: str, interactions: Sequence[Interaction]
    ) -> list[StreamEvent]:
        """Push a viewer-interaction batch to the channel's home shard.

        One lock acquisition and one store append (a single transaction on
        durable backends) per batch per shard.
        """
        lock, shard = self._route(video_id)
        with lock:
            return shard.ingest_plays_batch(video_id, interactions)

    def live_red_dots(self, video_id: str) -> list[RedDot]:
        """The dots to render right now for a channel (live or persisted)."""
        lock, shard = self._route(video_id)
        with lock:
            return shard.live_red_dots(video_id)

    def end_live(self, video_id: str, duration: float | None = None) -> list[RedDot]:
        """Close a live channel on its home shard; final dots are persisted."""
        lock, shard = self._route(video_id)
        with lock:
            return shard.end_live(video_id, duration)

    def recover_live_sessions(self) -> list:
        """Rebuild every shard's open sessions from their durable checkpoints.

        The sharded twin of
        :meth:`~repro.platform.service.LightorWebService.recover_live_sessions`:
        each shard recovers from its *own* backend under its own lock, and
        because the hash ring placement is deterministic across processes, a
        channel recovers on exactly the shard that checkpointed it.  Returns
        the merged :class:`~repro.platform.recovery.RecoveredSession`
        reports, ordered by video id.
        """
        recovered = []
        for shard, lock in zip(self.shards, self._locks):
            with lock:
                recovered.extend(shard.recover_live_sessions())
        return sorted(recovered, key=lambda report: report.video_id)

    # ----------------------------------------------------------------- summary
    def db_paths(self) -> list[str]:
        """Database files behind the shards (empty for non-durable backends)."""
        return [
            shard.store.path
            for shard in self.shards
            if isinstance(shard.store, SQLiteStore) and not is_memory_path(shard.store.path)
        ]

    def stats(self) -> dict[str, int]:
        """Store row counts summed across shards (plus the shard count)."""
        totals: dict[str, int] = {"shards": self.n_shards}
        for shard, lock in zip(self.shards, self._locks):
            with lock:
                for key, value in shard.store.stats().items():
                    totals[key] = totals.get(key, 0) + value
        return totals

    def suspend(self) -> int:
        """Checkpoint every shard's open sessions and release the backends.

        The sharded twin of
        :meth:`~repro.platform.service.LightorWebService.suspend` — the
        graceful-drain counterpart of :meth:`close`: nothing is finalized, so
        a durable deployment can be resumed byte-exactly with
        :meth:`recover_live_sessions` (``repro recover``).  Returns the total
        number of sessions checkpointed.  Like :meth:`close`, every shard is
        suspended even when one raises; the first error is re-raised at the
        end.
        """
        first_error: BaseException | None = None
        checkpointed = 0
        for shard, lock in zip(self.shards, self._locks):
            with lock:
                try:
                    checkpointed += shard.suspend()
                except BaseException as error:  # noqa: BLE001 - re-raised below
                    if first_error is None:
                        first_error = error
        if first_error is not None:
            raise first_error
        return checkpointed

    def close(self) -> None:
        """Shut down every shard: open live sessions are finalized (their
        results persist through the eviction callbacks) before the backends
        are released.

        A shard whose ``shutdown()`` raises must not abort the loop: the
        remaining shards still own live sessions and open backends, and
        skipping them would leak every one of their stores and silently drop
        their session finalization.  Every shard is therefore closed
        best-effort and the first error is re-raised once all of them have
        been given the chance.
        """
        first_error: BaseException | None = None
        for shard, lock in zip(self.shards, self._locks):
            with lock:
                try:
                    shard.shutdown()
                except BaseException as error:  # noqa: BLE001 - re-raised below
                    if first_error is None:
                        first_error = error
        if first_error is not None:
            raise first_error
