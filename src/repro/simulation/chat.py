"""Chat-stream simulation.

Generates a time-stamped chat log for a synthetic video that reproduces the
phenomena the paper's Highlight Initializer relies on and must survive:

* **background chatter** — a Poisson stream of longer, diverse messages
  spread over the whole video;
* **reaction bursts** — after each ground-truth highlight, the chat rate
  ramps up and peaks ``reaction_delay`` seconds after the highlight start;
  burst messages are short and repetitive (emote spam, the same exclamation),
  giving the message-length and message-similarity features their signal;
* **bot spam bursts** — occasional advertisement bursts with *high* message
  counts but *long*, dissimilar messages; these fool a detector that only
  looks at message counts (the naive baseline and the msg-num-only ablation)
  but not the full three-feature model.

Every quantity is drawn from the per-game :class:`GameProfile`, so the two
synthetic datasets differ in chat rate, vocabulary and reaction delay just as
the paper's Dota2 and LoL datasets do.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

import numpy as np

from repro.core.types import ChatMessage, Video, VideoChatLog
from repro.simulation.profiles import GameProfile, profile_for_game
from repro.simulation.vocab import GameVocabulary, vocabulary_for_game
from repro.utils.rng import SeedSequenceFactory

__all__ = ["ChatSimulator", "live_replay", "interleave_live"]


def live_replay(chat_log: VideoChatLog) -> Iterator[ChatMessage]:
    """Yield a recorded chat log's messages in arrival (timestamp) order.

    This is the bridge between the recorded-video simulators and the
    streaming engine: a live channel is, from the engine's point of view,
    just a chat log whose future has not happened yet.
    """
    yield from chat_log.messages


def interleave_live(
    chat_logs: list[VideoChatLog],
) -> Iterator[tuple[str, ChatMessage]]:
    """Merge several channels' chat into one globally time-ordered feed.

    Yields ``(video_id, message)`` pairs ordered by timestamp across all
    channels — the arrival pattern a multiplexing orchestrator sees when it
    serves many concurrent live streams.
    """
    import heapq
    import itertools

    # The sequence counter breaks timestamp ties so the heap never falls
    # through to comparing messages or iterators (which would raise).
    sequence = itertools.count()
    feeds = []
    for log in chat_logs:
        iterator = live_replay(log)
        first = next(iterator, None)
        if first is not None:
            feeds.append(
                (first.timestamp, next(sequence), log.video.video_id, first, iterator)
            )
    heapq.heapify(feeds)
    while feeds:
        _, _, video_id, message, iterator = heapq.heappop(feeds)
        yield video_id, message
        following = next(iterator, None)
        if following is not None:
            heapq.heappush(
                feeds,
                (following.timestamp, next(sequence), video_id, following, iterator),
            )

# Bot bursts post this many messages within a few seconds.
_BOT_BURST_SIZE = (12, 30)
_BOT_BURST_SPAN = 6.0
# Off-topic conversation surges (count-only detector bait).
_SURGE_RATE_PER_HOUR = 4.0
_SURGE_SIZE = (20, 45)
_SURGE_SPAN = 18.0
# Number of synthetic chatter user names to draw from.
_CHATTER_POOL = 400


@dataclass
class ChatSimulator:
    """Generates a :class:`VideoChatLog` for a synthetic video."""

    seeds: SeedSequenceFactory

    def simulate(self, video: Video) -> VideoChatLog:
        """Generate the chat log for ``video`` (deterministic per video id)."""
        profile = profile_for_game(video.game)
        vocab = vocabulary_for_game(video.game)
        rng = self.seeds.rng("chat", video.video_id)

        # Channels differ in chat activity: a popular tournament rerun chats
        # several times faster than a small personal stream.  The per-video
        # activity factor scales both the background chatter and the reaction
        # bursts, producing the spread of chat rates behind the paper's
        # applicability CDF (Fig. 9a) — including a tail of quiet videos
        # below the 500 messages/hour threshold.
        activity = float(np.exp(rng.normal(0.0, 0.8)))
        profile = replace(
            profile,
            background_chat_rate=profile.background_chat_rate * activity,
            burst_chat_rate=profile.burst_chat_rate * activity,
        )

        messages: list[ChatMessage] = []
        messages.extend(self._background_messages(rng, video, profile, vocab))
        messages.extend(self._reaction_messages(rng, video, profile, vocab))
        messages.extend(self._conversation_surges(rng, video, profile, vocab, activity))
        messages.extend(self._bot_messages(rng, video, profile, vocab, activity))
        return VideoChatLog(video=video, messages=messages)

    # ---------------------------------------------------------- background
    def _background_messages(
        self,
        rng: np.random.Generator,
        video: Video,
        profile: GameProfile,
        vocab: GameVocabulary,
    ) -> list[ChatMessage]:
        """Poisson stream of casual chatter across the whole video."""
        expected = profile.background_chat_rate * video.duration
        count = int(rng.poisson(expected))
        timestamps = np.sort(rng.uniform(0.0, video.duration, size=count))
        messages = []
        for timestamp in timestamps:
            messages.append(
                ChatMessage(
                    timestamp=float(timestamp),
                    user=self._chatter_name(rng),
                    text=vocab.sample_background(rng),
                )
            )
        return messages

    # ------------------------------------------------------------ reactions
    def _reaction_messages(
        self,
        rng: np.random.Generator,
        video: Video,
        profile: GameProfile,
        vocab: GameVocabulary,
    ) -> list[ChatMessage]:
        """Delayed reaction burst after each ground-truth highlight.

        The burst is a Gaussian-shaped rate bump whose peak lies
        ``reaction_delay`` seconds after the highlight *start* (viewers react
        once they have seen the exciting moment), with total mass
        ``burst_chat_rate * burst_duration`` messages.
        """
        messages: list[ChatMessage] = []
        for highlight in video.highlights:
            # Viewers react to the *climax* of the highlight — the big play
            # usually lands somewhere in the first half to two-thirds of the
            # labelled segment, not exactly at its start — and their messages
            # arrive a typing delay after that.  The peak therefore lags the
            # labelled start by climax offset + reaction delay, which is what
            # the adjustment stage has to learn (and why some adjusted dots
            # still land after short highlights end, producing the Type I
            # cases the Extractor has to repair).
            climax_offset = float(rng.uniform(0.1, 0.6)) * min(highlight.duration, 25.0)
            delay = max(
                3.0,
                climax_offset
                + rng.normal(profile.reaction_delay_mean, profile.reaction_delay_std),
            )
            peak_time = min(video.duration - 1.0, highlight.start + delay)
            n_messages = max(4, int(rng.poisson(profile.burst_chat_rate * profile.burst_duration)))
            spread = profile.burst_duration / 2.5
            offsets = rng.normal(0.0, spread, size=n_messages)
            # Viewers echo each other: a burst revolves around one or two
            # "topic" exclamations (plus emote spam), which is what gives the
            # message-similarity feature its signal (paper Fig. 2b).
            topic_phrases = [vocab.sample_reaction(rng) for _ in range(int(rng.integers(1, 3)))]
            for offset in offsets:
                timestamp = float(np.clip(peak_time + offset, 0.0, video.duration - 1e-6))
                # Reaction messages should not precede the highlight itself:
                # nobody reacts to what they have not seen yet.
                if timestamp < highlight.start:
                    timestamp = float(
                        rng.uniform(highlight.start, min(video.duration - 1e-6, peak_time + spread))
                    )
                if rng.random() < 0.7:
                    text = str(rng.choice(topic_phrases))
                    if rng.random() < 0.35:
                        text = f"{text} {rng.choice(vocab.emotes)}"
                else:
                    text = vocab.sample_reaction(rng)
                messages.append(
                    ChatMessage(
                        timestamp=timestamp,
                        user=self._chatter_name(rng),
                        text=text,
                    )
                )
        return messages

    # --------------------------------------------------------------- surges
    def _conversation_surges(
        self,
        rng: np.random.Generator,
        video: Video,
        profile: GameProfile,
        vocab: GameVocabulary,
        activity: float = 1.0,
    ) -> list[ChatMessage]:
        """Off-topic conversation surges (high count, long diverse messages).

        The paper notes that with only the message-number feature, windows
        where "viewers were discussing something on random topics which were
        not related to the highlights" get ranked as highlights (Fig. 6a).
        These surges — the streamer asks chat a question, a debate breaks out
        between games — are bursts of *long, dissimilar* messages at
        non-highlight positions, so they fool a count-only detector but not
        the three-feature model.
        """
        hours = video.duration / 3600.0
        n_surges = int(rng.poisson(_SURGE_RATE_PER_HOUR * hours))
        messages: list[ChatMessage] = []
        for _ in range(n_surges):
            center = self._non_highlight_position(rng, video)
            if center is None:
                continue
            surge_size = max(4, int(rng.integers(*_SURGE_SIZE) * min(activity, 1.5)))
            span = _SURGE_SPAN
            for _ in range(surge_size):
                timestamp = float(
                    np.clip(center + rng.normal(0.0, span / 2.0), 0.0, video.duration - 1e-6)
                )
                messages.append(
                    ChatMessage(
                        timestamp=timestamp,
                        user=self._chatter_name(rng),
                        text=vocab.sample_background(rng),
                    )
                )
        return messages

    # ----------------------------------------------------------------- bots
    def _bot_messages(
        self,
        rng: np.random.Generator,
        video: Video,
        profile: GameProfile,
        vocab: GameVocabulary,
        activity: float = 1.0,
    ) -> list[ChatMessage]:
        """Advertisement spam bursts at random, non-highlight positions."""
        hours = video.duration / 3600.0
        n_bursts = int(rng.poisson(profile.bot_spam_rate_per_hour * hours))
        messages: list[ChatMessage] = []
        for burst_index in range(n_bursts):
            center = self._non_highlight_position(rng, video)
            if center is None:
                continue
            burst_size = max(4, int(rng.integers(*_BOT_BURST_SIZE) * min(activity, 1.5)))
            bot_name = f"promo_bot_{burst_index}"
            for _ in range(burst_size):
                timestamp = float(
                    np.clip(
                        center + rng.uniform(-_BOT_BURST_SPAN, _BOT_BURST_SPAN),
                        0.0,
                        video.duration - 1e-6,
                    )
                )
                messages.append(
                    ChatMessage(timestamp=timestamp, user=bot_name, text=vocab.sample_bot(rng))
                )
        return messages

    @staticmethod
    def _non_highlight_position(
        rng: np.random.Generator, video: Video, margin: float = 90.0, attempts: int = 30
    ) -> float | None:
        """A random position at least ``margin`` seconds from any highlight."""
        for _ in range(attempts):
            candidate = float(rng.uniform(0.0, video.duration))
            if all(
                candidate < h.start - margin or candidate > h.end + margin
                for h in video.highlights
            ):
                return candidate
        return None

    @staticmethod
    def _chatter_name(rng: np.random.Generator) -> str:
        return f"viewer_{int(rng.integers(0, _CHATTER_POOL))}"
