"""Synthetic per-second visual-excitement track for a video.

The paper's Joint-LSTM baseline consumes image features extracted from the
video frames by a pre-trained CNN.  No video frames exist in this offline
reproduction, so this module generates what such a feature extractor would
see: a per-second scalar "visual excitement" signal that is

* elevated while a ground-truth highlight is on screen (big fights fill the
  screen with effects),
* noisy everywhere (camera pans, HUD changes),
* and occasionally elevated by *false bumps* — visually busy moments that are
  not actually highlights (shop menus, replays, crowd shots), which is what
  limits a purely visual model's precision.

The track is a property of the simulated video content, so it lives in the
simulation package; the deep baselines merely consume it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import Video
from repro.utils.rng import SeedSequenceFactory
from repro.utils.smoothing import gaussian_smooth

__all__ = ["VisualTrackSimulator"]


@dataclass
class VisualTrackSimulator:
    """Generates the per-second visual-excitement signal of a video."""

    seeds: SeedSequenceFactory
    highlight_level: float = 1.0
    noise_std: float = 0.35
    false_bumps_per_hour: float = 10.0
    bump_level: float = 1.0
    bump_duration: float = 15.0
    smoothing_sigma: float = 3.0

    def simulate(self, video: Video) -> np.ndarray:
        """Return a ``(ceil(duration),)`` array of visual excitement values."""
        rng = self.seeds.rng("visual", video.video_id)
        n_seconds = int(np.ceil(video.duration))
        track = rng.normal(0.0, self.noise_std, size=n_seconds)

        for highlight in video.highlights:
            start = int(highlight.start)
            end = min(n_seconds, int(np.ceil(highlight.end)))
            # A real visual model misses some highlights (off-screen action,
            # subtle plays) and over-fires on flashy non-highlights, which is
            # why a purely visual detector is imperfect.
            track[start:end] += self.highlight_level * rng.uniform(0.35, 1.2)

        hours = video.duration / 3600.0
        n_bumps = int(rng.poisson(self.false_bumps_per_hour * hours))
        for _ in range(n_bumps):
            center = int(rng.uniform(0, n_seconds))
            half = int(self.bump_duration / 2)
            start = max(0, center - half)
            end = min(n_seconds, center + half)
            track[start:end] += self.bump_level * rng.uniform(0.6, 1.1)

        return gaussian_smooth(track, sigma=self.smoothing_sigma)
