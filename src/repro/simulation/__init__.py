"""Simulation substrate: synthetic Twitch-like data and crowd behaviour.

The paper's evaluation uses (a) crawled Twitch chat logs for Dota2 and LoL
videos with human highlight labels and (b) play/interaction data collected
from ~500 Amazon Mechanical Turk workers.  Neither resource is available
offline, so this package provides deterministic, seeded generators that
reproduce the *statistical signatures* the paper reports and analyses:

* :mod:`profiles <repro.simulation.profiles>` — per-game statistics
  (chat rate, highlight count/length, reaction delay, viewer counts) matching
  the numbers in Section VII-A.
* :mod:`vocab <repro.simulation.vocab>` — game vocabularies, emotes and
  chat-bot phrases used to synthesise message text.
* :mod:`video <repro.simulation.video>` — videos with ground-truth highlights.
* :mod:`chat <repro.simulation.chat>` — time-stamped chat with background
  chatter, delayed reaction bursts (short, similar messages) and bot spam.
* :mod:`viewers <repro.simulation.viewers>` — viewer sessions around red dots
  reproducing the Type I (diffuse) / Type II (concentrated) play regimes of
  Fig. 3.
* :mod:`crowd <repro.simulation.crowd>` — AMT-style crowd rounds feeding the
  Highlight Extractor's iterative loop.
"""

from repro.simulation.profiles import GameProfile, DOTA2_PROFILE, LOL_PROFILE, profile_for_game
from repro.simulation.vocab import GameVocabulary, vocabulary_for_game
from repro.simulation.video import VideoGenerator
from repro.simulation.chat import ChatSimulator, interleave_live, live_replay
from repro.simulation.viewers import ViewerBehaviorModel, ViewerPopulation
from repro.simulation.crowd import CrowdSimulator

__all__ = [
    "GameProfile",
    "DOTA2_PROFILE",
    "LOL_PROFILE",
    "profile_for_game",
    "GameVocabulary",
    "vocabulary_for_game",
    "VideoGenerator",
    "ChatSimulator",
    "interleave_live",
    "live_replay",
    "ViewerBehaviorModel",
    "ViewerPopulation",
    "CrowdSimulator",
]
