"""Synthetic video generation with ground-truth highlights.

Videos are generated per game profile: the duration, the number of
highlights, each highlight's length and their positions are drawn from the
profile's ranges.  Highlights are placed with a minimum separation so that
the top-k selection and the δ-spacing constraint of the Initializer are
meaningfully exercised, mirroring the real datasets where highlights are
spread over the match (team fights, objectives).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.types import Highlight, Video
from repro.simulation.profiles import GameProfile, profile_for_game
from repro.utils.rng import SeedSequenceFactory
from repro.utils.validation import ValidationError, require_positive

__all__ = ["VideoGenerator"]

# Highlights closer than this are merged in real labelling; we simply keep
# them apart so every generated highlight is a distinct event.
_MIN_HIGHLIGHT_GAP = 150.0
# Keep highlights away from the very start/end of the video: streams open
# with a lobby/draft phase and end with a post-game screen, neither of which
# is a highlight.
_EDGE_MARGIN = 120.0


@dataclass
class VideoGenerator:
    """Generates :class:`~repro.core.types.Video` objects for a game profile.

    Parameters
    ----------
    profile:
        Game profile (or pass ``game=`` to :meth:`generate`); controls the
        duration, highlight count and highlight length distributions.
    seeds:
        Seed factory; video ``i`` of game ``g`` is always identical for the
        same base seed.
    """

    seeds: SeedSequenceFactory
    profile: GameProfile | None = None
    channel_pool_size: int = 10

    def generate(self, index: int, game: str | None = None) -> Video:
        """Generate video number ``index`` for ``game``.

        The index is part of the random stream name, so videos are stable
        under re-ordering and can be generated lazily.
        """
        profile = self._resolve_profile(game)
        rng = self.seeds.rng("video", profile.name, index)

        duration = float(rng.uniform(profile.min_duration, profile.max_duration))
        n_highlights = self._sample_highlight_count(rng, profile, duration)
        highlights = self._place_highlights(rng, profile, duration, n_highlights)
        viewer_count = self._sample_viewers(rng, profile)
        channel = f"{profile.name}_channel_{int(rng.integers(0, self.channel_pool_size))}"

        return Video(
            video_id=f"{profile.name}-{index:04d}",
            duration=duration,
            game=profile.name,
            channel=channel,
            viewer_count=viewer_count,
            highlights=tuple(highlights),
        )

    def generate_many(self, count: int, game: str | None = None, start_index: int = 0) -> list[Video]:
        """Generate ``count`` consecutive videos starting at ``start_index``."""
        require_positive(count, "count")
        return [self.generate(start_index + i, game=game) for i in range(count)]

    # ------------------------------------------------------------ internals
    def _resolve_profile(self, game: str | None) -> GameProfile:
        if game is not None:
            return profile_for_game(game)
        if self.profile is None:
            raise ValidationError("either construct with a profile or pass game=")
        return self.profile

    @staticmethod
    def _sample_highlight_count(
        rng: np.random.Generator, profile: GameProfile, duration: float
    ) -> int:
        """Poisson highlight count around the profile mean, floored at 6.

        The paper's videos average 10 (Dota2) / 14 (LoL) labelled highlights
        regardless of exact length, so the count is only mildly scaled by
        duration; the floor keeps Precision@10 meaningful on every video.
        """
        hours = duration / 3600.0
        reference_hours = (profile.min_duration + profile.max_duration) / 2.0 / 3600.0
        scale = 0.5 + 0.5 * (hours / reference_hours)
        expected = profile.mean_highlights_per_video * scale
        return max(6, int(rng.poisson(expected)))

    @staticmethod
    def _sample_viewers(rng: np.random.Generator, profile: GameProfile) -> int:
        """Log-normal audience size, floored at 100 viewers for popular channels."""
        viewers = rng.lognormal(mean=np.log(profile.mean_viewers), sigma=profile.viewer_spread)
        return int(max(100, viewers))

    @staticmethod
    def _place_highlights(
        rng: np.random.Generator,
        profile: GameProfile,
        duration: float,
        n_highlights: int,
    ) -> list[Highlight]:
        """Place non-overlapping highlights with a minimum gap between them."""
        usable_start = _EDGE_MARGIN
        usable_end = max(usable_start + 1.0, duration - _EDGE_MARGIN)
        highlights: list[Highlight] = []
        attempts = 0
        max_attempts = n_highlights * 50
        while len(highlights) < n_highlights and attempts < max_attempts:
            attempts += 1
            length = float(
                rng.uniform(profile.min_highlight_length, profile.max_highlight_length)
            )
            start = float(rng.uniform(usable_start, max(usable_start + 1.0, usable_end - length)))
            candidate = Highlight(start=start, end=min(start + length, duration), label="ground_truth")
            too_close = any(
                abs(candidate.start - existing.start) < _MIN_HIGHLIGHT_GAP
                for existing in highlights
            )
            if too_close:
                continue
            highlights.append(candidate)
        return sorted(highlights, key=lambda h: h.start)
