"""Game vocabularies used to synthesise chat message text.

Each game has its own reaction tokens (hero names, champion names, emotes) so
that character-level models trained on one game do not transfer to the other
— the property behind the paper's generalization study (Fig. 11) — while
LIGHTOR's general features (count, length, similarity) are insensitive to the
vocabulary and do transfer.

Three text registers are provided per game:

* **reaction phrases** — short, repetitive exclamations posted right after a
  highlight ("KILL!", emote spam);
* **background phrases** — longer, more diverse casual chatter;
* **bot phrases** — long advertisement messages posted in rapid bursts by
  spam bots (the noise that fools a naive message-count detector).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import ValidationError

__all__ = ["GameVocabulary", "vocabulary_for_game", "DOTA2_VOCAB", "LOL_VOCAB", "FILLER_WORDS"]

# Generic conversational words used to pad background chatter so that casual
# messages are long and rarely repeat each other's tokens — the property that
# separates them from reaction bursts under the message-similarity feature.
FILLER_WORDS: tuple[str, ...] = (
    "honestly", "really", "maybe", "probably", "though", "because", "today",
    "yesterday", "tomorrow", "stream", "game", "play", "player", "team",
    "think", "feel", "watch", "watching", "waiting", "question", "answer",
    "anyone", "someone", "everyone", "nobody", "always", "never", "sometimes",
    "pretty", "kind", "sort", "thing", "stuff", "whole", "entire", "actual",
    "literally", "basically", "still", "already", "again", "later", "earlier",
    "minute", "hour", "second", "point", "moment", "chance", "reason", "idea",
    "opinion", "favourite", "better", "worse", "best", "worst", "crazy",
    "weird", "normal", "classic", "typical", "random", "serious", "joking",
    "laughing", "crying", "hungry", "tired", "sleepy", "awake", "morning",
    "evening", "night", "weekend", "school", "work", "home", "friend",
    "brother", "sister", "internet", "connection", "quality", "volume",
    "music", "song", "keyboard", "mouse", "screen", "monitor", "settings",
    "update", "patch", "version", "server", "region", "ping", "lag",
    "ranked", "casual", "tournament", "match", "round", "score", "winner",
    "loser", "draft", "pick", "ban", "strategy", "tactic", "build", "item",
    "gold", "level", "experience", "objective", "map", "lane", "jungle",
    "timer", "clock", "break", "pause", "delay", "schedule", "caster",
    "analyst", "interview", "replay", "camera", "angle", "overlay",
)


@dataclass(frozen=True)
class GameVocabulary:
    """The phrase pools for one game."""

    game: str
    emotes: tuple[str, ...]
    reaction_phrases: tuple[str, ...]
    background_phrases: tuple[str, ...]
    bot_phrases: tuple[str, ...]

    def sample_reaction(self, rng: np.random.Generator) -> str:
        """A short reaction message: a phrase, an emote, or repeated emotes."""
        roll = rng.random()
        if roll < 0.45:
            return str(rng.choice(self.reaction_phrases))
        if roll < 0.8:
            emote = str(rng.choice(self.emotes))
            return " ".join([emote] * int(rng.integers(1, 4)))
        phrase = str(rng.choice(self.reaction_phrases))
        emote = str(rng.choice(self.emotes))
        return f"{phrase} {emote}"

    def sample_background(self, rng: np.random.Generator) -> str:
        """A longer, more diverse casual-chat message.

        Roughly a third of casual messages reuse a stock phrase; the rest are
        composed from a generic word pool so that two background messages
        rarely share tokens — casual chatter is long *and* dissimilar, which
        is what the message-length and message-similarity features exploit.
        """
        if rng.random() < 0.35:
            base = str(rng.choice(self.background_phrases))
            n_fillers = int(rng.integers(0, 4))
        else:
            base = ""
            n_fillers = int(rng.integers(5, 14))
        fillers = [str(word) for word in rng.choice(FILLER_WORDS, size=n_fillers)] if n_fillers else []
        text = " ".join(([base] if base else []) + fillers)
        return text if text else str(rng.choice(self.background_phrases))

    def sample_bot(self, rng: np.random.Generator) -> str:
        """A long advertisement message posted by a spam bot."""
        return str(rng.choice(self.bot_phrases))


DOTA2_VOCAB = GameVocabulary(
    game="dota2",
    emotes=("PogChamp", "Kreygasm", "LUL", "EZ", "gg", "4Head", "BabyRage", "monkaS"),
    reaction_phrases=(
        "KILL!",
        "wombo combo",
        "rampage!!",
        "black hole!!!",
        "what a dream coil",
        "echo slam!!",
        "divine rapier",
        "ultra kill",
        "team wipe",
        "that juke",
        "buyback and win",
        "aegis snatch",
        "roshan steal",
        "refresher echo",
    ),
    background_phrases=(
        "what item should he build next though",
        "anyone know when the next major starts this year",
        "i think the draft was lost in the first two picks honestly",
        "chat can we please talk about the new patch notes",
        "this laning stage has been so slow and boring to watch",
        "does anyone else think the carry is way too greedy here",
        "what rank do you need to be to play like this",
        "the support player never buys wards and it shows",
        "just came back from work what did i miss in this game",
        "the caster voice is so soothing i could sleep to this",
        "why does he keep farming the jungle instead of pushing",
        "i had this exact game last night and we lost in 20 minutes",
    ),
    bot_phrases=(
        "FOLLOW my channel for FREE dota coaching every day www dot coachbot dot example",
        "WIN skins NOW visit giveaway-example-site dot com and enter code DOTA for free arcana",
        "best vpn for gamers use code DOTA2 for 80 percent off your first year subscribe now",
        "join our discord for daily giveaways and free boosting services invite link in profile",
    ),
)

LOL_VOCAB = GameVocabulary(
    game="lol",
    emotes=("PogU", "OMEGALUL", "Pog", "KEKW", "GIGACHAD", "monkaW", "PepeHands", "EZ Clap"),
    reaction_phrases=(
        "PENTAKILL",
        "what a flash",
        "baron steal!!",
        "1v5 outplay",
        "insec kick!!",
        "perfect teamfight",
        "elder steal",
        "backdoor!!!",
        "quadra kill",
        "that dodge",
        "faker what was that",
        "nexus race",
        "level one cheese",
        "hexgate play",
    ),
    background_phrases=(
        "who do you think wins worlds this year chat",
        "the meta is so tank heavy right now it is not fun",
        "what runes should i take on this champion in ranked",
        "this best of five has been pretty one sided so far",
        "the casters keep mispronouncing his name and it bothers me",
        "i think the jungler is getting blamed for the mid lane diff",
        "anyone watching from europe this is so late for me",
        "they should have banned that champion in the draft phase",
        "scaling comp versus early game comp classic matchup honestly",
        "my solo queue games never look anything like this",
        "the production quality of this broadcast is really good",
        "when is the next game starting after this break",
    ),
    bot_phrases=(
        "get CHEAP rp at rp-deals-example dot com use code NALCS for ten percent off today",
        "FREE skin giveaway every hour follow and type join in chat to enter the raffle now",
        "climb to diamond with our coaching site first lesson free link in the channel panels",
        "best gaming chair discount ends tonight use code LEAGUE at checkout for 50 percent off",
    ),
)

_VOCABS = {vocab.game: vocab for vocab in (DOTA2_VOCAB, LOL_VOCAB)}


def vocabulary_for_game(game: str) -> GameVocabulary:
    """Return the vocabulary for ``game`` (``"dota2"`` or ``"lol"``)."""
    try:
        return _VOCABS[game.lower()]
    except KeyError as error:
        known = ", ".join(sorted(_VOCABS))
        raise ValidationError(f"unknown game {game!r}; known games: {known}") from error
