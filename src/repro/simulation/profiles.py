"""Game profiles: the statistical parameters of each synthetic dataset.

The numbers are calibrated to Section VII-A of the paper:

* **Dota2** — 60 Twitch personal-channel videos, 0.5–2 h long, ~10 labelled
  highlights per video, highlight length 5–50 s, 800–4300 chat messages per
  video.
* **LoL** — 173 NALCS tournament videos, 0.5–1 h long, ~14 labelled
  highlights per video, highlight length 2–81 s, tournament chat is denser
  and uses a different vocabulary.

Section VII-B measures a chat reaction delay of roughly 20–27 s; both
profiles therefore centre their reaction delay in that band (with different
means, so the learned constant is a property of the data, not a constant of
the simulator shared with the system under test).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import ValidationError, require_positive

__all__ = ["GameProfile", "DOTA2_PROFILE", "LOL_PROFILE", "profile_for_game"]


@dataclass(frozen=True)
class GameProfile:
    """Statistical description of a game's videos, chat and audience.

    Attributes
    ----------
    name:
        Game identifier (``"dota2"`` or ``"lol"``).
    min_duration / max_duration:
        Video length range in seconds.
    mean_highlights_per_video:
        Average number of ground-truth highlights per video.
    min_highlight_length / max_highlight_length:
        Highlight duration range in seconds.
    background_chat_rate:
        Baseline chatter intensity in messages per second (off-highlight).
    burst_chat_rate:
        Peak reaction intensity in messages per second during a highlight
        discussion burst.
    reaction_delay_mean / reaction_delay_std:
        Typing/reaction delay between the highlight's climax and the peak of
        its chat burst (the total start-to-peak delay also includes the
        climax position inside the highlight).
    burst_duration:
        How long a reaction burst lasts, in seconds.
    bot_spam_rate_per_hour:
        Expected number of advertisement chat-bot bursts per hour (high
        message count, long dissimilar messages — the noise that breaks the
        naive message-count detector).
    mean_viewers / viewer_spread:
        Log-normal-ish audience size parameters for the applicability study.
    """

    name: str
    min_duration: float
    max_duration: float
    mean_highlights_per_video: float
    min_highlight_length: float
    max_highlight_length: float
    background_chat_rate: float
    burst_chat_rate: float
    reaction_delay_mean: float
    reaction_delay_std: float
    burst_duration: float
    bot_spam_rate_per_hour: float
    mean_viewers: float
    viewer_spread: float

    def __post_init__(self) -> None:
        require_positive(self.min_duration, "min_duration")
        if self.max_duration < self.min_duration:
            raise ValidationError("max_duration must be >= min_duration")
        require_positive(self.mean_highlights_per_video, "mean_highlights_per_video")
        require_positive(self.min_highlight_length, "min_highlight_length")
        if self.max_highlight_length < self.min_highlight_length:
            raise ValidationError("max_highlight_length must be >= min_highlight_length")
        require_positive(self.background_chat_rate, "background_chat_rate")
        require_positive(self.burst_chat_rate, "burst_chat_rate")
        require_positive(self.reaction_delay_mean, "reaction_delay_mean")
        require_positive(self.burst_duration, "burst_duration")
        require_positive(self.mean_viewers, "mean_viewers")


DOTA2_PROFILE = GameProfile(
    name="dota2",
    min_duration=1800.0,
    max_duration=7200.0,
    mean_highlights_per_video=10.0,
    min_highlight_length=5.0,
    max_highlight_length=50.0,
    background_chat_rate=0.25,
    burst_chat_rate=2.2,
    reaction_delay_mean=16.0,
    reaction_delay_std=4.0,
    burst_duration=22.0,
    bot_spam_rate_per_hour=3.0,
    mean_viewers=2500.0,
    viewer_spread=1.0,
)

LOL_PROFILE = GameProfile(
    name="lol",
    min_duration=1800.0,
    max_duration=3600.0,
    mean_highlights_per_video=14.0,
    min_highlight_length=2.0,
    max_highlight_length=81.0,
    background_chat_rate=0.45,
    burst_chat_rate=3.0,
    reaction_delay_mean=14.0,
    reaction_delay_std=3.5,
    burst_duration=18.0,
    bot_spam_rate_per_hour=2.0,
    mean_viewers=9000.0,
    viewer_spread=0.8,
)

_PROFILES = {profile.name: profile for profile in (DOTA2_PROFILE, LOL_PROFILE)}


def profile_for_game(game: str) -> GameProfile:
    """Return the profile for ``game`` (``"dota2"`` or ``"lol"``)."""
    try:
        return _PROFILES[game.lower()]
    except KeyError as error:
        known = ", ".join(sorted(_PROFILES))
        raise ValidationError(f"unknown game {game!r}; known games: {known}") from error
