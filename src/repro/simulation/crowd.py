"""AMT-style crowd simulation feeding the Highlight Extractor.

The paper publishes a red-dot task on Amazon Mechanical Turk, waits for ~10
worker responses, recomputes the dot position, publishes a new task, and
repeats until convergence.  :class:`CrowdSimulator` reproduces that loop: it
wraps the :class:`ViewerBehaviorModel` into the *interaction source* callable
expected by :class:`~repro.core.extractor.extractor.HighlightExtractor`, so
every extractor round corresponds to one crowd task round with fresh viewers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.extractor.extractor import InteractionSource
from repro.core.types import Interaction, RedDot, Video
from repro.simulation.viewers import ViewerBehaviorModel, ViewerPopulation
from repro.utils.rng import SeedSequenceFactory
from repro.utils.validation import require_positive

__all__ = ["CrowdSimulator"]


@dataclass
class CrowdSimulator:
    """Simulates rounds of crowd workers interacting with red dots.

    Parameters
    ----------
    seeds:
        Seed factory shared with the rest of the simulation.
    responses_per_round:
        Number of worker responses collected before the dot is recomputed
        (the paper waits for 10 responses per task).
    population:
        Worker pool; defaults to ~500 workers as in the paper's study.
    behavior:
        The viewer behaviour model; a custom one can be injected to study
        noisier or cleaner crowds.
    """

    seeds: SeedSequenceFactory
    responses_per_round: int = 10
    population: ViewerPopulation = field(default_factory=ViewerPopulation)
    behavior: ViewerBehaviorModel | None = None
    total_responses_: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        require_positive(self.responses_per_round, "responses_per_round")
        if self.behavior is None:
            self.behavior = ViewerBehaviorModel(seeds=self.seeds)

    def collect_round(
        self, video: Video, dot: RedDot, round_index: int
    ) -> list[Interaction]:
        """Collect one round of worker interactions for ``dot``."""
        interactions = self.behavior.simulate_round(
            video=video,
            dot=dot,
            n_viewers=self.responses_per_round,
            round_index=round_index,
            population=self.population,
        )
        self.total_responses_ += self.responses_per_round
        return interactions

    def interaction_source(self, video: Video) -> InteractionSource:
        """Return the per-video interaction source used by the Extractor."""

        def source(dot: RedDot, round_index: int) -> list[Interaction]:
            return self.collect_round(video, dot, round_index)

        return source
