"""Viewer behaviour model: how people interact with a red dot.

The paper's key empirical observation (Fig. 3) is that viewer play data falls
into two regimes depending on where the red dot sits relative to the
highlight:

* **Type II** (dot before the highlight end) — viewers click the dot, watch
  the highlight, and stop shortly after it ends.  Play starts concentrate at
  or slightly after the dot (people skip the first few uneventful seconds),
  so the start-offset distribution is roughly normal with a small positive
  median.
* **Type I** (dot after the highlight end) — viewers click the dot, see
  nothing interesting, and start hunting: short probe plays, backward seeks
  to random earlier positions, forward skips.  Start offsets are roughly
  uniform over tens of seconds.

A further fraction of viewers behave randomly regardless of the dot (opening
the video somewhere else, leaving the player running), providing the noise
the Extractor's filters must remove.

The model emits raw :class:`~repro.core.types.Interaction` events (play,
pause, seeks, stop), so the Extractor's play-reconstruction code path is
exercised end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import Highlight, Interaction, InteractionKind, RedDot, Video
from repro.utils.rng import SeedSequenceFactory
from repro.utils.validation import require_positive

__all__ = ["ViewerBehaviorModel", "ViewerPopulation"]


@dataclass
class ViewerPopulation:
    """A pool of synthetic crowd workers.

    The paper recruited 492 AMT workers; the default population matches that
    order of magnitude.  Workers are addressed by index so rounds can sample
    disjoint or overlapping subsets deterministically.
    """

    size: int = 500
    name_prefix: str = "worker"

    def __post_init__(self) -> None:
        require_positive(self.size, "size")

    def worker_name(self, index: int) -> str:
        """Stable worker name for ``index`` (wraps around the pool)."""
        return f"{self.name_prefix}_{index % self.size:04d}"

    def sample_workers(self, rng: np.random.Generator, count: int) -> list[str]:
        """Sample ``count`` distinct workers from the pool."""
        count = min(count, self.size)
        indices = rng.choice(self.size, size=count, replace=False)
        return [self.worker_name(int(i)) for i in indices]


@dataclass
class ViewerBehaviorModel:
    """Generates viewer interactions for one red dot.

    Parameters
    ----------
    seeds:
        Seed factory; the stream is keyed by (video, dot position, round), so
        every crowd round sees fresh but reproducible viewers.
    skip_mean:
        Mean of the "skip the boring first seconds" offset for engaged
        Type-II viewers (the paper measures a 5–10 s median).
    watch_past_end:
        How long after the highlight end an engaged viewer keeps watching.
    noise_fraction:
        Fraction of viewers whose behaviour ignores the dot entirely.
    probe_duration:
        Length of a "check whether anything is here" probe play in seconds
        (short enough to be removed by the duration filter).
    """

    seeds: SeedSequenceFactory
    skip_mean: float = 7.0
    skip_std: float = 3.0
    watch_past_end: float = 6.0
    noise_fraction: float = 0.2
    probe_duration: float = 4.0
    hunt_span: float = 45.0

    # ------------------------------------------------------------ public API
    def simulate_round(
        self,
        video: Video,
        dot: RedDot,
        n_viewers: int,
        round_index: int = 0,
        population: ViewerPopulation | None = None,
    ) -> list[Interaction]:
        """Generate the interactions of ``n_viewers`` watching around ``dot``."""
        require_positive(n_viewers, "n_viewers")
        population = population or ViewerPopulation()
        rng = self.seeds.rng("viewers", video.video_id, round(dot.position, 1), round_index)
        workers = population.sample_workers(rng, n_viewers)
        target = self._closest_highlight(video, dot)

        interactions: list[Interaction] = []
        for worker in workers:
            if rng.random() < self.noise_fraction or target is None:
                interactions.extend(self._noise_session(rng, video, dot, worker))
            elif dot.position > target.end:
                interactions.extend(self._hunting_session(rng, video, dot, target, worker))
            else:
                interactions.extend(self._engaged_session(rng, video, dot, target, worker))
        # Keep arrival (causal) order per worker: sorting by video position
        # would re-order a re-watch STOP before the seek that caused it.
        return interactions

    # -------------------------------------------------------------- sessions
    def _engaged_session(
        self,
        rng: np.random.Generator,
        video: Video,
        dot: RedDot,
        highlight: Highlight,
        worker: str,
    ) -> list[Interaction]:
        """Type-II behaviour: click the dot, watch the highlight, stop after it.

        Viewers skip the first uneventful seconds with probability ~0.7 (the
        "most exciting part happens a few seconds after the start" effect),
        which produces the small positive median start offset of Fig. 3b.
        A quarter of them re-watch the clip: after reaching the end they seek
        back near where they started and play it again — one of the reasons
        the paper gives for backward seeks being an ambiguous signal.
        """
        start = dot.position
        if rng.random() < 0.7:
            # Viewers skip towards the exciting part of the clip, but not past
            # it: the skip saturates at roughly a third of the way into the
            # highlight, so repeated crowd rounds do not drift the dot
            # forward indefinitely.
            attractor = highlight.start + 0.35 * highlight.duration
            skipped = dot.position + max(0.0, rng.normal(self.skip_mean, self.skip_std))
            start = min(skipped, max(dot.position, attractor))
        start = float(np.clip(start, 0.0, video.duration - 1.0))
        end = highlight.end + max(0.0, rng.normal(self.watch_past_end, 2.0))
        end = float(np.clip(end, start + 1.0, video.duration))
        events = [Interaction(timestamp=start, kind=InteractionKind.PLAY, user=worker)]
        if rng.random() < 0.15:
            # Re-watches are imprecise: people seek back to roughly where
            # they remember the action starting, not to an exact timestamp.
            rewatch_start = float(
                np.clip(start + rng.normal(-8.0, 10.0), 0.0, end - 1.0)
            )
            rewatch_end = float(
                np.clip(rewatch_start + rng.uniform(8.0, max(9.0, highlight.duration)), rewatch_start + 1.0, video.duration)
            )
            events.append(
                Interaction(
                    timestamp=end,
                    kind=InteractionKind.SEEK_BACKWARD,
                    user=worker,
                    target=rewatch_start,
                )
            )
            events.append(
                Interaction(timestamp=rewatch_end, kind=InteractionKind.STOP, user=worker)
            )
        else:
            events.append(Interaction(timestamp=end, kind=InteractionKind.STOP, user=worker))
        return events

    def _hunting_session(
        self,
        rng: np.random.Generator,
        video: Video,
        dot: RedDot,
        highlight: Highlight,
        worker: str,
    ) -> list[Interaction]:
        """Type-I behaviour: probe at the dot, then hunt backwards for the highlight.

        The session starts with a short probe play at the dot (nothing
        interesting is there since the highlight already ended), followed by
        one or two backward seeks to roughly uniform earlier positions and a
        medium-length play at each, matching the diffuse offsets of Fig. 3a.
        """
        events: list[Interaction] = []
        probe_start = float(np.clip(dot.position, 0.0, video.duration - 1.0))
        probe_end = float(np.clip(probe_start + self.probe_duration, 0.0, video.duration))
        events.append(Interaction(timestamp=probe_start, kind=InteractionKind.PLAY, user=worker))

        n_hunts = int(rng.integers(1, 3))
        seek_origin = probe_end
        for _ in range(n_hunts):
            jump_back = float(rng.uniform(5.0, self.hunt_span))
            target = float(np.clip(seek_origin - jump_back, 0.0, video.duration - 1.0))
            events.append(
                Interaction(
                    timestamp=seek_origin,
                    kind=InteractionKind.SEEK_BACKWARD,
                    user=worker,
                    target=target,
                )
            )
            watch = float(rng.uniform(8.0, 25.0))
            seek_origin = float(np.clip(target + watch, 0.0, video.duration))
        events.append(Interaction(timestamp=seek_origin, kind=InteractionKind.STOP, user=worker))
        return events

    def _noise_session(
        self,
        rng: np.random.Generator,
        video: Video,
        dot: RedDot,
        worker: str,
    ) -> list[Interaction]:
        """Behaviour unrelated to the dot: probing, random navigation, marathons."""
        roll = rng.random()
        if roll < 0.4:
            # Random short probe somewhere near (but not at) the dot.
            offset = float(rng.uniform(-90.0, 90.0))
            start = float(np.clip(dot.position + offset, 0.0, video.duration - 1.0))
            end = float(np.clip(start + rng.uniform(1.0, self.probe_duration), 0.0, video.duration))
            return [
                Interaction(timestamp=start, kind=InteractionKind.PLAY, user=worker),
                Interaction(timestamp=end, kind=InteractionKind.STOP, user=worker),
            ]
        if roll < 0.75:
            # Random navigation: watch a little, then jump somewhere else
            # entirely — the seek noise that dilutes seek-histogram methods.
            start = float(rng.uniform(0.0, max(1.0, video.duration - 120.0)))
            watched = float(np.clip(start + rng.uniform(5.0, 40.0), 0.0, video.duration - 1.0))
            target = float(rng.uniform(0.0, video.duration - 1.0))
            kind = (
                InteractionKind.SEEK_BACKWARD if target < watched else InteractionKind.SEEK_FORWARD
            )
            stop = float(np.clip(target + rng.uniform(3.0, 30.0), target, video.duration))
            return [
                Interaction(timestamp=start, kind=InteractionKind.PLAY, user=worker),
                Interaction(timestamp=watched, kind=kind, user=worker, target=target),
                Interaction(timestamp=stop, kind=InteractionKind.STOP, user=worker),
            ]
        # Marathon: leaves the player running far beyond any highlight.
        start = float(np.clip(dot.position - rng.uniform(0.0, 30.0), 0.0, video.duration - 1.0))
        end = float(np.clip(start + rng.uniform(400.0, 900.0), 0.0, video.duration))
        return [
            Interaction(timestamp=start, kind=InteractionKind.PLAY, user=worker),
            Interaction(timestamp=end, kind=InteractionKind.STOP, user=worker),
        ]

    # -------------------------------------------------------------- helpers
    @staticmethod
    def _closest_highlight(video: Video, dot: RedDot, max_distance: float = 120.0) -> Highlight | None:
        """The ground-truth highlight nearest the dot, if any is within range.

        Dots that the Initializer placed on non-highlight chatter have no
        nearby highlight; their viewers behave like noise, which is exactly
        what happens on the real platform.
        """
        best: Highlight | None = None
        best_distance = float("inf")
        for highlight in video.highlights:
            if highlight.start - max_distance <= dot.position <= highlight.end + max_distance:
                distance = abs(dot.position - highlight.midpoint)
                if distance < best_distance:
                    best_distance = distance
                    best = highlight
        return best
