"""LIGHTOR reproduction: implicit-crowdsourcing highlight extraction.

Reproduction of "Towards Extracting Highlights From Recorded Live Videos: An
Implicit Crowdsourcing Approach" (Jiang, Qu, Wang, Wang, Zheng — ICDE 2020).

Public API highlights::

    from repro import LightorConfig, LightorPipeline
    from repro.datasets import DatasetSpec, build_dataset
    from repro.simulation import CrowdSimulator
    from repro.utils.rng import SeedSequenceFactory

    dataset = build_dataset(DatasetSpec.dota2(size=12))
    train, test = dataset[:1], dataset[1:]

    pipeline = LightorPipeline(LightorConfig())
    pipeline.fit([video.training_pair for video in train])

    crowd = CrowdSimulator(seeds=SeedSequenceFactory(7))
    result = pipeline.run(test[0].chat_log, crowd.interaction_source(test[0].video), k=5)
    for highlight in result.highlights:
        print(highlight.start, highlight.end)
"""

from repro.core import (
    ChatMessage,
    Highlight,
    HighlightExtractor,
    HighlightInitializer,
    Interaction,
    InteractionKind,
    LightorConfig,
    LightorPipeline,
    PipelineResult,
    PlayRecord,
    RedDot,
    RedDotType,
    Video,
    VideoChatLog,
)

__version__ = "1.0.0"

__all__ = [
    "ChatMessage",
    "Highlight",
    "HighlightExtractor",
    "HighlightInitializer",
    "Interaction",
    "InteractionKind",
    "LightorConfig",
    "LightorPipeline",
    "PipelineResult",
    "PlayRecord",
    "RedDot",
    "RedDotType",
    "Video",
    "VideoChatLog",
    "__version__",
]
