"""The load harness: drive a workload through a service tier and report.

:class:`LoadGenerator` takes a :class:`~repro.loadgen.workload.LoadWorkload`
and a :class:`~repro.platform.sharding.ShardedLightorService` and replays
the workload's ingest batches through a worker pool:

* channels are partitioned across workers (a channel's batches must stay in
  order, so one worker owns a channel for the whole run); different
  channels proceed concurrently, which is exactly the contention profile a
  sharded front door sees;
* every service call is timed into per-worker
  :class:`~repro.loadgen.metrics.LatencyRecorder` instances (merged after
  the run — the hot path takes no shared locks);
* after the drive, every channel is closed (``end_live``) and its persisted
  state — final red dots, refined-highlight history, the full interaction
  log — is fingerprinted.

The **oracle spot-check** replays the byte-identical batch sequence
sequentially into a fresh single-shard, in-memory service and compares the
fingerprints: because every engine in the stack is deterministic, a sharded
concurrent run must produce *exactly* the oracle's results — any divergence
means a routing, locking or batching bug, and the report counts it.

With ``transport="http"`` the same workload is driven **over the wire**: a
:class:`~repro.platform.server.GatewayThread` serves the tier on a loopback
port, each worker owns a :class:`~repro.platform.client.LightorClient`
(which mirrors the service surface method for method), and every ingest,
open and close crosses a real HTTP boundary.  The fingerprints still read
the backing stores directly — they are the ground truth the wire must not
perturb — so the oracle spot-check now also proves the gateway's JSON wire
format is byte-exact end to end.

With ``transport="cluster"`` the tier is a fleet of shard worker
*processes* (:mod:`repro.platform.cluster`): the front door
consistent-hash-routes every call over the wire to the owning worker, and
the oracle bar still does not move — a multi-process run must be
byte-identical to the sequential single-shard replay.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from threading import Lock, Thread

from repro.core.initializer.initializer import HighlightInitializer
from repro.loadgen.metrics import LatencyRecorder, StageStats, merge_recorders
from repro.loadgen.workload import LoadWorkload, WorkBatch
from repro.platform import codecs
from repro.platform.sharding import ShardedLightorService
from repro.utils.validation import ValidationError, require_positive

__all__ = [
    "ChannelOutcome",
    "KillRecoverReport",
    "LoadReport",
    "LoadGenerator",
    "ReshardChaosReport",
    "run_kill_recover",
    "run_load",
    "run_reshard",
]


class _BatchTrigger:
    """Fire one action mid-drive, after ``after`` ingested batches.

    The chaos hook of the reshard harness: whichever worker thread crosses
    the batch threshold runs the action *inline* — the other workers keep
    driving traffic throughout, which is exactly the property under test
    (channels that do not move keep serving).  If the workload is shorter
    than the threshold, :meth:`ensure_fired` runs the action after the
    drive phase, while every channel is still live.
    """

    def __init__(self, after: int, action) -> None:
        if after < 0:
            raise ValidationError(f"trigger threshold must be >= 0, got {after}")
        self.after = after
        self.action = action
        self.result = None  # written by the single firing thread only
        self._lock = Lock()
        self._count = 0  # guarded-by: _lock
        self._fired = False  # guarded-by: _lock

    @property
    def fired(self) -> bool:
        """Whether the action has run (or is running)."""
        with self._lock:
            return self._fired

    def batch_done(self) -> None:
        """Count one driven batch; fire the action on the crossing."""
        with self._lock:
            self._count += 1
            due = self._count >= self.after and not self._fired
            if due:
                self._fired = True
        if due:
            self.result = self.action()

    def ensure_fired(self) -> None:
        """Run the action now if no batch crossing ever fired it."""
        with self._lock:
            due = not self._fired
            if due:
                self._fired = True
        if due:
            self.result = self.action()


@dataclass(frozen=True)
class ChannelOutcome:
    """Fingerprintable end state of one channel after a run."""

    video_id: str
    final_dots: int
    fingerprint: str


@dataclass(frozen=True)
class LoadReport:
    """Everything a load run measured.

    ``events_per_sec`` is the headline wall-clock throughput (all stages,
    all workers); ``stages`` holds the per-stage service-side breakdown;
    ``divergences`` counts channels whose final state differed from the
    sequential single-shard oracle (must be zero on a healthy build).
    """

    shards: int
    workers: int
    batch_size: int
    channels: int
    total_events: int
    wall_seconds: float
    stages: dict[str, StageStats]
    outcomes: dict[str, ChannelOutcome]
    divergences: list[str] = field(default_factory=list)
    oracle_checked: bool = False
    transport: str = "inproc"
    wire_codec: str = "json"

    @property
    def events_per_sec(self) -> float:
        """Wall-clock events per second across the whole run.

        ``0.0`` (not ``inf``) when the wall clock recorded nothing — the
        JSON-safety rule of :meth:`StageStats.events_per_sec` applies here
        too.
        """
        return self.total_events / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def to_dict(self) -> dict:
        """JSON-friendly form (what ``BENCH_load.json`` stores)."""
        return {
            "shards": self.shards,
            "workers": self.workers,
            "batch_size": self.batch_size,
            "transport": self.transport,
            "wire_codec": self.wire_codec,
            "channels": self.channels,
            "total_events": self.total_events,
            "wall_seconds": round(self.wall_seconds, 6),
            "events_per_sec": round(self.events_per_sec, 1),
            "stages": {name: stats.to_dict() for name, stats in sorted(self.stages.items())},
            "oracle_checked": self.oracle_checked,
            "divergences": list(self.divergences),
        }

    def describe(self) -> str:
        """Multi-line human-readable summary for the CLI."""
        lines = [
            f"{self.total_events:,} events over {self.channels} channel(s) "
            f"in {self.wall_seconds:.2f}s — {self.events_per_sec:,.0f} events/s "
            f"({self.shards} shard(s), {self.workers} worker(s), batch {self.batch_size}, "
            f"transport {self.transport}, codec {self.wire_codec})"
        ]
        for name, stats in sorted(self.stages.items()):
            lines.append(
                f"  {name:6s} {stats.events:>9,} events / {stats.calls:>8,} calls   "
                f"{stats.events_per_sec:>12,.0f} ev/s   "
                f"p50 {stats.p50_ms:7.3f} ms   p95 {stats.p95_ms:7.3f} ms   "
                f"p99 {stats.p99_ms:7.3f} ms"
            )
        if self.oracle_checked:
            if self.divergences:
                lines.append(
                    f"  ORACLE DIVERGENCE on {len(self.divergences)} channel(s): "
                    + ", ".join(self.divergences)
                )
            else:
                lines.append(
                    f"  oracle spot-check: {len(self.outcomes)} channel(s), 0 divergences"
                )
        return "\n".join(lines)


class LoadGenerator:
    """Replays a workload through a service tier with a worker pool.

    Parameters
    ----------
    workload:
        The materialised traffic (see :class:`LoadWorkload`).
    workers:
        Worker threads.  Channels are assigned round-robin in channel-id
        order, so the partition — and therefore every per-channel call
        sequence — is deterministic regardless of thread scheduling.
    """

    def __init__(self, workload: LoadWorkload, workers: int = 4) -> None:
        require_positive(workers, "workers")
        self.workload = workload
        self.workers = workers

    # ------------------------------------------------------------------- drive
    def drive(
        self,
        service: ShardedLightorService,
        oracle_factory=None,
        transport: str = "inproc",
        wire_codec: str = "json",
        per_channel_pending: int | None = None,
        trigger: _BatchTrigger | None = None,
    ) -> LoadReport:
        """Run the workload against ``service`` and (optionally) oracle-check.

        ``oracle_factory`` builds a fresh single-shard service for the
        sequential replay; pass ``None`` to skip the spot-check (e.g. for
        pure timing runs).  The driven service is fully closed before the
        method returns.

        ``transport="http"`` serves ``service`` through an in-process
        :class:`~repro.platform.server.GatewayThread` on a loopback port and
        gives every worker its own
        :class:`~repro.platform.client.LightorClient`, so the whole run —
        opens, ingest batches, closes — crosses a real HTTP boundary while
        the fingerprints keep reading the backing stores directly.

        ``transport="cluster"`` expects ``service`` to be a
        :class:`~repro.platform.cluster.ClusterFrontDoor` over an
        already-running :class:`~repro.platform.cluster.ShardClusterSupervisor`
        fleet; every worker gets its own clone (one kept-alive connection
        per shard per worker), and the fingerprints read the shard
        *processes*' persisted state over the same wire.  The supervisor's
        lifecycle stays with the caller — closing the front door here only
        releases its sockets.

        ``wire_codec`` picks the request/response encoding on wire
        transports (``"json"`` or ``"binary"`` — see
        :mod:`repro.platform.wire`); the fingerprints are codec-blind, so a
        binary run must land byte-identical state to a JSON run.  For
        ``transport="cluster"`` pass the same codec the front door was
        built with (``run_load`` wires both ends).  Meaningless for
        ``inproc`` (there is no wire) — anything but ``"json"`` is
        rejected there.

        ``per_channel_pending`` arms the gateway's per-channel admission
        budget on ``transport="http"`` (see
        :class:`~repro.platform.server.LightorGateway`).  The harness keeps
        at most one request in flight per channel (one worker owns a
        channel), so any budget ≥ 1 never refuses the drive itself — the
        knob exists so fairness scenarios exercise the budget code path
        under load.  Like ``wire_codec`` it is meaningless on ``inproc``;
        on ``cluster`` the budgets belong to the worker gateways, which are
        configured when the fleet boots (pass it to :func:`run_load`).

        ``trigger`` arms a mid-run chaos action (see :class:`_BatchTrigger`
        and :func:`run_reshard`): the worker thread that drives the
        threshold-crossing batch runs it inline while the rest of the pool
        keeps serving traffic; if the workload ends first, the action runs
        after the drive phase with every channel still live.
        """
        from repro.platform import wire

        if transport not in ("inproc", "http", "cluster"):
            # The contract holds on every exit: the driven service is closed.
            service.close()
            raise ValidationError(
                f"unknown transport {transport!r} "
                "(expected 'inproc', 'http' or 'cluster')"
            )
        if wire_codec not in wire.WIRE_CODECS:
            service.close()
            raise ValidationError(
                f"unknown wire codec {wire_codec!r} (expected one of {wire.WIRE_CODECS})"
            )
        if transport == "inproc" and wire_codec != "json":
            service.close()
            raise ValidationError(
                "wire_codec applies to wire transports only; "
                "transport='inproc' has no wire to encode"
            )
        if per_channel_pending is not None and transport != "http":
            service.close()
            raise ValidationError(
                "per_channel_pending is a gateway admission budget: it applies "
                "to transport='http' here; cluster worker budgets are set when "
                "the fleet boots (pass per_channel_pending to run_load)"
            )
        gateway = None
        clients: list = []
        if transport == "http":
            from repro.platform.client import LightorClient
            from repro.platform.server import GatewayThread

            # Every worker keeps one blocking request in flight, so the
            # admission budget must cover the whole pool — a default-sized
            # gateway would 503 the drivers past its budget.
            gateway = GatewayThread(
                service,
                max_pending=max(64, self.workers + 2),
                worker_threads=min(32, max(8, self.workers)),
                max_pending_per_channel=per_channel_pending,
            )
            try:
                host, port = gateway.start()
            except BaseException:
                service.close()
                raise
            clients = [
                LightorClient(host, port, wire_codec=wire_codec)
                for _ in range(self.workers)
            ]
            frontends: list = list(clients)
        elif transport == "cluster":
            # One front-door clone per worker: clones share the ring but own
            # their sockets, exactly like the per-worker clients above.
            try:
                clients = [service.clone() for _ in range(self.workers)]
            except BaseException:
                service.close()
                raise
            frontends = list(clients)
        else:
            frontends = [service] * self.workers

        batches = self.workload.batches()
        worker_of = self._assign_channels()
        queues: list[list[WorkBatch]] = [[] for _ in range(self.workers)]
        for batch in batches:
            queues[worker_of[batch.video_id]].append(batch)

        recorders = [LatencyRecorder() for _ in range(self.workers)]
        failures: list[BaseException] = []
        threads = [
            Thread(
                target=self._worker,
                args=(frontend, queue, recorder, failures, trigger),
                name=f"loadgen-{index}",
                daemon=True,
            )
            for index, (frontend, queue, recorder) in enumerate(
                zip(frontends, queues, recorders)
            )
        ]
        try:
            # A channel whose events were all filtered out produces no
            # batches; open it up front so the close phase still runs its
            # lifecycle.
            self._open_idle_channels(frontends[0], batches)
            started = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            wall = time.perf_counter() - started
            if failures:
                # A dead worker means part of the traffic was never driven; a
                # report computed over the full planned event count would be a
                # lie, so the run fails loudly with the first worker error.
                raise failures[0]
            if trigger is not None:
                # A threshold past the last batch still fires — after the
                # traffic, with every channel live — so the chaos action is
                # never silently skipped.
                trigger.ensure_fired()
            outcomes = self._close_channels(frontends[0], service, recorders[0])
        finally:
            for client in clients:
                client.close()
            if gateway is not None:
                gateway.stop()
            service.close()
        stages = merge_recorders(recorders)

        divergences: list[str] = []
        oracle_checked = False
        if oracle_factory is not None:
            oracle_checked = True
            divergences = self._oracle_divergences(batches, outcomes, oracle_factory)

        return LoadReport(
            shards=service.n_shards,
            workers=self.workers,
            batch_size=self.workload.spec.batch_size,
            channels=len(self.workload.plans),
            total_events=self.workload.total_events,
            wall_seconds=wall,
            stages=stages,
            outcomes=outcomes,
            divergences=divergences,
            oracle_checked=oracle_checked,
            transport=transport,
            wire_codec=wire_codec,
        )

    # ---------------------------------------------------------------- internals
    def _assign_channels(self) -> dict[str, int]:
        channel_ids = sorted(plan.video.video_id for plan in self.workload.plans)
        return {vid: index % self.workers for index, vid in enumerate(channel_ids)}

    def _open_idle_channels(self, frontend, batches: list[WorkBatch]) -> None:
        """Register channels that will receive no traffic this run."""
        with_traffic = {batch.video_id for batch in batches}
        for plan in self.workload.plans:
            if plan.video.video_id not in with_traffic:
                frontend.start_live(plan.video)

    def _worker(
        self,
        frontend,
        queue: list[WorkBatch],
        recorder: LatencyRecorder,
        failures: list[BaseException],
        trigger: _BatchTrigger | None = None,
    ) -> None:
        # ``frontend`` is the service itself (inproc) or this worker's own
        # LightorClient (http) — the two expose the same call surface.
        live: set[str] = set()
        plans = {plan.video.video_id: plan for plan in self.workload.plans}
        try:
            for batch in queue:
                if batch.video_id not in live:
                    t0 = time.perf_counter()
                    frontend.start_live(plans[batch.video_id].video)
                    recorder.record("open", time.perf_counter() - t0)
                    live.add(batch.video_id)
                t0 = time.perf_counter()
                if batch.kind == "chat":
                    frontend.ingest_chat_batch(batch.video_id, list(batch.events))
                else:
                    frontend.ingest_plays_batch(batch.video_id, list(batch.events))
                recorder.record(batch.kind, time.perf_counter() - t0, events=len(batch.events))
                if trigger is not None:
                    trigger.batch_done()
        except BaseException as error:  # noqa: BLE001 - surfaced by drive()
            failures.append(error)

    def _close_channels(
        self,
        frontend,
        service: ShardedLightorService,
        recorder: LatencyRecorder,
    ) -> dict[str, ChannelOutcome]:
        outcomes: dict[str, ChannelOutcome] = {}
        for plan in sorted(self.workload.plans, key=lambda p: p.video.video_id):
            video_id = plan.video.video_id
            t0 = time.perf_counter()
            dots = frontend.end_live(video_id, plan.duration)
            recorder.record("close", time.perf_counter() - t0)
            outcomes[video_id] = ChannelOutcome(
                video_id=video_id,
                final_dots=len(dots),
                fingerprint=self._fingerprint(service, video_id, dots),
            )
        return outcomes

    @staticmethod
    def _fingerprint(service, video_id: str, dots) -> str:
        """Canonical JSON of everything the run persisted for a channel."""
        store = service.store_for(video_id)
        return json.dumps(
            {
                "dots": [codecs.red_dot_to_dict(dot) for dot in dots],
                "stored_dots": [
                    codecs.red_dot_to_dict(dot) for dot in store.get_red_dots(video_id)
                ],
                "highlights": [
                    codecs.highlight_record_to_dict(record)
                    for record in store.highlight_history(video_id)
                ],
                "interactions": [
                    codecs.interaction_to_dict(interaction)
                    for interaction in store.get_interactions(video_id)
                ],
            },
            sort_keys=True,
            allow_nan=False,
        )

    def _oracle_divergences(
        self,
        batches: list[WorkBatch],
        outcomes: dict[str, ChannelOutcome],
        oracle_factory,
    ) -> list[str]:
        """Sequentially replay the identical batches; list differing channels."""
        oracle: ShardedLightorService = oracle_factory()
        try:
            plans = {plan.video.video_id: plan for plan in self.workload.plans}
            self._open_idle_channels(oracle, batches)
            live: set[str] = set()
            for batch in batches:
                if batch.video_id not in live:
                    oracle.start_live(plans[batch.video_id].video)
                    live.add(batch.video_id)
                if batch.kind == "chat":
                    oracle.ingest_chat_batch(batch.video_id, list(batch.events))
                else:
                    oracle.ingest_plays_batch(batch.video_id, list(batch.events))
            divergences = []
            for video_id, outcome in sorted(outcomes.items()):
                dots = oracle.end_live(video_id, plans[video_id].duration)
                expected = self._fingerprint(oracle, video_id, dots)
                if expected != outcome.fingerprint:
                    divergences.append(video_id)
            return divergences
        finally:
            oracle.close()


@dataclass(frozen=True)
class KillRecoverReport:
    """Outcome of a kill-and-recover chaos run (``repro load --kill-after``).

    ``divergences`` lists channels whose post-recovery end state differed
    from the same workload run uninterrupted — it must be empty: the
    checkpoint/recovery subsystem promises byte-identical final red dots,
    highlight records and interaction logs (see
    :mod:`repro.platform.recovery`).
    """

    shards: int
    channels: int
    total_batches: int
    killed_after: int
    checkpoint_every: int
    sessions_recovered: int
    chat_replayed: int
    plays_replayed: int
    events_redriven: int
    total_events: int
    divergences: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the recovered run matched the uninterrupted oracle."""
        return not self.divergences

    def describe(self) -> str:
        """Multi-line human-readable summary for the CLI."""
        lines = [
            f"killed after {self.killed_after}/{self.total_batches} batches "
            f"({self.shards} shard(s), checkpoint every {self.checkpoint_every} events); "
            f"recovered {self.sessions_recovered} session(s), replaying "
            f"{self.chat_replayed} chat + {self.plays_replayed} play event(s) "
            f"from the store",
            f"re-drove {self.events_redriven:,} of {self.total_events:,} events "
            f"to finish the run",
        ]
        if self.divergences:
            lines.append(
                f"RECOVERY DIVERGENCE on {len(self.divergences)} channel(s): "
                + ", ".join(self.divergences)
            )
        else:
            lines.append(
                f"recovered run is byte-identical to the uninterrupted run "
                f"on all {self.channels} channel(s)"
            )
        return "\n".join(lines)


def run_kill_recover(
    spec,
    initializer: HighlightInitializer,
    *,
    db_path,
    shards: int = 1,
    kill_after: int,
    checkpoint_every: int = 256,
    live_k: int | None = None,
    workload: LoadWorkload | None = None,
) -> KillRecoverReport:
    """Drive a workload, kill the service tier mid-run, recover, and verify.

    The chaos twin of :func:`run_load`, sequential for exactness:

    1. drive the first ``kill_after`` batches into a checkpointing SQLite
       service tier (chat persisted — recovery can only replay what the
       store holds);
    2. simulate a crash — close the backend connections without finalizing
       a single session (no ``shutdown``, no eviction callbacks);
    3. build a fresh tier over the same database files, rebuild every open
       session via ``recover_live_sessions``, and finish the run, skipping
       exactly the events the recovered sessions already ingested;
    4. close every channel and compare each channel's full persisted end
       state (final dots, stored dots, highlight records, interaction log)
       byte-for-byte against the same workload driven uninterrupted.

    Any divergence is a recovery bug and lands in the report (the CLI and
    CI fail on it).
    """
    require_positive(checkpoint_every, "checkpoint_every")
    if kill_after < 0:
        raise ValidationError(f"kill_after must be >= 0, got {kill_after}")
    if db_path is None:
        raise ValidationError(
            "kill/recover needs a file-backed SQLite store (pass db_path); "
            "an in-memory database cannot survive the simulated crash"
        )
    if workload is None:
        workload = LoadWorkload.from_spec(spec)
    batches = workload.batches()
    plans = {plan.video.video_id: plan for plan in workload.plans}
    kill_at = min(kill_after, len(batches))
    max_sessions = max(spec.channels, 1)

    def create(backend: str, path, n_shards: int, cadence: int | None):
        return ShardedLightorService.create(
            n_shards,
            initializer,
            backend=backend,
            db_path=path,
            max_live_sessions=max_sessions,
            live_k=live_k,
            checkpoint_every=cadence,
        )

    def ingest(service: ShardedLightorService, batch: WorkBatch, events: list) -> None:
        if batch.kind == "chat":
            service.ingest_chat_batch(batch.video_id, events, persist=True)
        else:
            service.ingest_plays_batch(batch.video_id, events)

    def open_idle(service: ShardedLightorService) -> None:
        with_traffic = {batch.video_id for batch in batches}
        for plan in workload.plans:
            if plan.video.video_id not in with_traffic:
                service.start_live(plan.video)

    def close_and_fingerprint(service: ShardedLightorService) -> dict[str, str]:
        fingerprints: dict[str, str] = {}
        for plan in sorted(workload.plans, key=lambda p: p.video.video_id):
            video_id = plan.video.video_id
            dots = service.end_live(video_id, plan.duration)
            fingerprints[video_id] = LoadGenerator._fingerprint(service, video_id, dots)
        return fingerprints

    # Phase 1: drive to the kill point, then drop the tier on the floor.
    service = create("sqlite", db_path, shards, checkpoint_every)
    open_idle(service)
    live: set[str] = set()
    for batch in batches[:kill_at]:
        if batch.video_id not in live:
            service.start_live(plans[batch.video_id].video)
            live.add(batch.video_id)
        ingest(service, batch, list(batch.events))
    for shard in service.shards:
        # The simulated crash: release the file handles so a fresh tier can
        # open the databases, but finalize nothing and delete no snapshot.
        shard.store.close()

    # Phase 2: a fresh tier over the same files rebuilds the open sessions
    # and finishes the run, skipping what the recovered sessions already saw.
    service = create("sqlite", db_path, shards, checkpoint_every)
    recovered = service.recover_live_sessions()
    skip = {
        report.video_id: {
            "chat": report.messages_ingested,
            "plays": report.interactions_ingested,
        }
        for report in recovered
    }
    live = {report.video_id for report in recovered}
    redriven = 0
    for batch in batches:
        events = list(batch.events)
        counts = skip.get(batch.video_id)
        if counts is not None and counts[batch.kind] > 0:
            if counts[batch.kind] >= len(events):
                counts[batch.kind] -= len(events)
                continue
            events = events[counts[batch.kind] :]
            counts[batch.kind] = 0
        if batch.video_id not in live:
            service.start_live(plans[batch.video_id].video)
            live.add(batch.video_id)
        ingest(service, batch, events)
        redriven += len(events)
    outcomes = close_and_fingerprint(service)
    service.close()

    # The uninterrupted reference: identical call sequence, one shard, no
    # checkpointing — which doubles as proof that checkpointing itself never
    # perturbs results.
    oracle = create("memory", None, 1, None)
    open_idle(oracle)
    live = set()
    for batch in batches:
        if batch.video_id not in live:
            oracle.start_live(plans[batch.video_id].video)
            live.add(batch.video_id)
        ingest(oracle, batch, list(batch.events))
    expected = close_and_fingerprint(oracle)
    oracle.close()

    divergences = [
        video_id
        for video_id in sorted(expected)
        if expected[video_id] != outcomes.get(video_id)
    ]
    return KillRecoverReport(
        shards=shards,
        channels=len(workload.plans),
        total_batches=len(batches),
        killed_after=kill_at,
        checkpoint_every=checkpoint_every,
        sessions_recovered=len(recovered),
        chat_replayed=sum(report.chat_replayed for report in recovered),
        plays_replayed=sum(report.plays_replayed for report in recovered),
        events_redriven=redriven,
        total_events=workload.total_events,
        divergences=divergences,
    )


@dataclass(frozen=True)
class ReshardChaosReport:
    """Outcome of an online-reshard chaos run (``repro load --reshard-at``).

    The tier is resharded **while the workload is being driven**: whichever
    driver thread crosses the batch threshold runs the reshard inline, the
    other threads keep pushing traffic, and every 409-redirected request is
    retried against the new owner by the routing layer.  ``divergences``
    lists channels whose final persisted state differed from the same
    workload driven sequentially into an undisturbed single-shard tier — it
    must be empty: moving a channel's rows and live session between shards
    (or worker processes) may never change a byte of what the run produces.

    ``pause_seconds`` holds the per-channel unavailability windows the
    migrations measured; :attr:`pause_p99_ms` is the headline the bench
    records.
    """

    transport: str
    backend: str
    old_shards: int
    new_shards: int
    reshard_after: int
    total_batches: int
    channels: int
    total_events: int
    channels_moved: int
    epoch: int
    pause_seconds: tuple[float, ...] = ()
    divergences: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the resharded run matched the undisturbed oracle."""
        return not self.divergences

    @property
    def pause_p99_ms(self) -> float:
        """p99 of the per-channel migration pause, in milliseconds."""
        if not self.pause_seconds:
            return 0.0
        ordered = sorted(self.pause_seconds)
        index = max(0, math.ceil(0.99 * len(ordered)) - 1)
        return ordered[index] * 1000.0

    def to_dict(self) -> dict:
        """JSON-friendly form (what ``BENCH_load.json`` stores)."""
        return {
            "transport": self.transport,
            "backend": self.backend,
            "old_shards": self.old_shards,
            "new_shards": self.new_shards,
            "reshard_after": self.reshard_after,
            "total_batches": self.total_batches,
            "channels": self.channels,
            "total_events": self.total_events,
            "channels_moved": self.channels_moved,
            "epoch": self.epoch,
            "pause_p99_ms": round(self.pause_p99_ms, 3),
            "divergences": list(self.divergences),
        }

    def describe(self) -> str:
        """Multi-line human-readable summary for the CLI."""
        lines = [
            f"resharded {self.old_shards} -> {self.new_shards} shard(s) after "
            f"{self.reshard_after}/{self.total_batches} batches "
            f"(transport {self.transport}, {self.backend} backend, "
            f"placement epoch {self.epoch})",
            f"moved {self.channels_moved} of {self.channels} channel(s); "
            f"per-channel pause p99 {self.pause_p99_ms:.1f} ms",
        ]
        if self.divergences:
            lines.append(
                f"RESHARD DIVERGENCE on {len(self.divergences)} channel(s): "
                + ", ".join(self.divergences)
            )
        else:
            lines.append(
                f"resharded run is byte-identical to the undisturbed run "
                f"on all {self.channels} channel(s)"
            )
        return "\n".join(lines)


def run_reshard(
    spec,
    initializer: HighlightInitializer,
    *,
    shards: int,
    to_shards: int,
    reshard_after: int,
    workers: int = 4,
    backend: str = "memory",
    db_path=None,
    transport: str = "inproc",
    wire_codec: str = "json",
    live_k: int | None = None,
    workload: LoadWorkload | None = None,
    cluster_seed: int = 2020,
) -> ReshardChaosReport:
    """Drive a workload, reshard the tier mid-run, and verify byte-equality.

    The reshard twin of :func:`run_kill_recover`, concurrent on purpose:
    the workload keeps being driven by the worker pool while the tier grows
    or shrinks underneath it.  ``transport="inproc"`` reshards a
    :class:`~repro.platform.sharding.ShardedLightorService` in place;
    ``transport="cluster"`` boots a worker-process fleet and has its
    supervisor spawn/drain whole processes mid-run, with every moved
    channel crossing the wire as a migration bundle.  Either way the final
    fingerprints must match the sequential single-shard oracle byte for
    byte — an online reshard may not change a single result.
    """
    require_positive(shards, "shards")
    require_positive(to_shards, "to_shards")
    if transport not in ("inproc", "cluster"):
        raise ValidationError(
            "reshard chaos supports transports 'inproc' and 'cluster' "
            "(an http gateway serves one fixed tier; reshard it in place "
            "via ShardedLightorService.reshard)"
        )
    if workload is None:
        workload = LoadWorkload.from_spec(spec)
    generator = LoadGenerator(workload, workers=workers)

    def oracle_factory() -> ShardedLightorService:
        return ShardedLightorService.create(
            1, initializer, backend="memory",
            max_live_sessions=max(spec.channels, 1), live_k=live_k,
        )

    if transport == "cluster":
        from repro.platform.cluster import ShardClusterSupervisor

        supervisor = ShardClusterSupervisor(
            shards,
            backend=backend,
            db_path=db_path,
            seed=cluster_seed,
            live_k=live_k,
            max_live_sessions=max(spec.channels, 1),
            wire_codec=wire_codec,
        )
        trigger = _BatchTrigger(reshard_after, lambda: supervisor.reshard(to_shards))
        supervisor.start()
        try:
            load = generator.drive(
                supervisor.front_door(),
                oracle_factory=oracle_factory,
                transport="cluster",
                wire_codec=wire_codec,
                trigger=trigger,
            )
        finally:
            supervisor.stop()
    else:
        service = ShardedLightorService.create(
            shards,
            initializer,
            backend=backend,
            db_path=db_path,
            max_live_sessions=max(spec.channels, 1),
            live_k=live_k,
        )
        trigger = _BatchTrigger(reshard_after, lambda: service.reshard(to_shards))
        load = generator.drive(
            service,
            oracle_factory=oracle_factory,
            transport="inproc",
            wire_codec=wire_codec,
            trigger=trigger,
        )

    reshard_report = trigger.result
    return ReshardChaosReport(
        transport=transport,
        backend=backend,
        old_shards=shards,
        new_shards=to_shards,
        reshard_after=min(reshard_after, len(workload.batches())),
        total_batches=len(workload.batches()),
        channels=len(workload.plans),
        total_events=workload.total_events,
        channels_moved=reshard_report.moved,
        epoch=reshard_report.epoch,
        pause_seconds=tuple(reshard_report.pause_seconds()),
        divergences=load.divergences,
    )


def run_load(
    spec,
    initializer: HighlightInitializer,
    *,
    shards: int = 1,
    workers: int = 4,
    backend: str = "memory",
    db_path=None,
    oracle: bool = True,
    live_k: int | None = None,
    workload: LoadWorkload | None = None,
    transport: str = "inproc",
    cluster_seed: int = 2020,
    wire_codec: str = "json",
    per_channel_pending: int | None = None,
) -> LoadReport:
    """Build the workload, the service tier and the harness; run once.

    This is the one-call entry point the CLI (``repro load``) and the
    scaling benchmark share.  Pass a pre-built ``workload`` (see
    :meth:`LoadWorkload.rebatched`) to reuse one synthesised fleet across a
    parameter grid.  The service is created with ``max_live_sessions``
    covering the whole fleet so LRU eviction cannot interleave with the run
    (evictions under concurrency are exercised by the orchestrator's own
    test suite; a load run wants deterministic end-state fingerprints).

    ``transport="http"`` drives the identical workload through an
    in-process HTTP gateway instead of direct calls — the oracle bar does
    not move: the wire must be byte-exact too.

    ``transport="cluster"`` boots a
    :class:`~repro.platform.cluster.ShardClusterSupervisor` fleet of
    ``shards`` worker *processes* for the duration of the run and drives
    their :class:`~repro.platform.cluster.ClusterFrontDoor`.  Each worker
    trains its serving model deterministically from ``cluster_seed``; for
    the oracle to hold, ``initializer`` must be the same deterministic
    model (the default ``cluster_seed=2020`` matches how ``repro load``
    builds it).  The fleet is SIGTERM-stopped before the report returns.

    ``per_channel_pending`` arms the per-channel admission budget of the
    wire gateways (the in-process one on ``http``, every worker gateway on
    ``cluster``); rejected on ``inproc``, where there is no gateway.
    """
    if workload is None:
        workload = LoadWorkload.from_spec(spec)
    generator = LoadGenerator(workload, workers=workers)

    def oracle_factory() -> ShardedLightorService:
        return ShardedLightorService.create(
            1, initializer, backend="memory",
            max_live_sessions=max(spec.channels, 1), live_k=live_k,
        )

    if transport == "cluster":
        from repro.platform.cluster import ShardClusterSupervisor

        supervisor = ShardClusterSupervisor(
            shards,
            backend=backend,
            db_path=db_path,
            seed=cluster_seed,
            live_k=live_k,
            max_live_sessions=max(spec.channels, 1),
            wire_codec=wire_codec,
            max_pending_per_channel=per_channel_pending,
        )
        supervisor.start()
        try:
            return generator.drive(
                supervisor.front_door(),
                oracle_factory=oracle_factory if oracle else None,
                transport="cluster",
                wire_codec=wire_codec,
            )
        finally:
            supervisor.stop()

    service = ShardedLightorService.create(
        shards,
        initializer,
        backend=backend,
        db_path=db_path,
        max_live_sessions=max(spec.channels, 1),
        live_k=live_k,
    )
    return generator.drive(
        service,
        oracle_factory=oracle_factory if oracle else None,
        transport=transport,
        wire_codec=wire_codec,
        per_channel_pending=per_channel_pending,
    )
