"""Deterministic multi-channel workload synthesis for load testing.

A *workload* is the traffic a fleet of concurrent live channels throws at
the LIGHTOR service tier: chat firehoses, viewer-play firehoses and channel
lifecycle churn (channels opening and closing at staggered times).  It is
synthesised entirely from the :mod:`repro.simulation` primitives — the same
generators the experiments use — so every event stream is a deterministic
function of the :class:`WorkloadSpec` and nothing else: two builds of the
same spec produce byte-identical traffic, which is what lets the load
harness spot-check a sharded concurrent run against a sequential oracle.

Channel popularity follows a Zipf profile (``weight ∝ 1/rank^s``), matching
the heavily skewed audience distribution of real streaming platforms: the
head channel receives a large share of the viewer-play traffic while a long
tail of quiet channels mostly exercises the per-channel bookkeeping (window
state, time-triggered re-evaluations) — both regimes stress different parts
of the service, which is the point of generating them together.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.types import ChatMessage, Interaction, RedDot, Video
from repro.simulation.chat import ChatSimulator
from repro.simulation.video import VideoGenerator
from repro.simulation.viewers import ViewerBehaviorModel, ViewerPopulation
from repro.utils.rng import SeedSequenceFactory
from repro.utils.validation import ValidationError, require_positive

__all__ = ["WorkloadSpec", "WorkBatch", "ChannelPlan", "LoadWorkload", "zipf_weights"]

# Loadgen channels draw video indices from this offset so their ids can never
# collide with the dataset/training videos (which start at index 0).
_CHANNEL_INDEX_OFFSET = 1000


def zipf_weights(count: int, exponent: float) -> np.ndarray:
    """Normalised Zipf popularity weights for ``count`` ranked channels.

    ``weight[i] ∝ 1 / (i + 1)^exponent``; an exponent of 0 gives a uniform
    fleet, ~1.0 the classic heavy skew of platform audiences.

    >>> [float(round(w, 3)) for w in zipf_weights(3, 1.0)]
    [0.545, 0.273, 0.182]
    """
    require_positive(count, "count")
    if exponent < 0:
        raise ValidationError(f"zipf exponent must be >= 0, got {exponent}")
    raw = 1.0 / np.power(np.arange(1, count + 1, dtype=float), exponent)
    return raw / raw.sum()


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a synthetic multi-channel load run.

    Attributes
    ----------
    channels:
        Number of live channels in the fleet.
    viewers:
        Total concurrent viewers across the fleet; split across channels by
        the Zipf profile, each viewer contributing one interaction session
        around a red dot (the viewer-play firehose).
    duration:
        Cap on each channel's stream length in seconds; channels whose
        synthetic video is shorter keep their natural length.
    batch_size:
        Events per ingest batch.  ``1`` reproduces today's per-event service
        traffic; larger sizes exercise the batched ingest path.
    zipf_exponent:
        Skew of the channel-popularity profile (0 = uniform).
    seed:
        Root seed; every chat log, video and viewer session derives from it.
    game:
        Game profile for the synthetic channels (chat rate, highlight shape).
    stagger:
        Channel lifecycle churn: channel ``i`` goes live ``i * stagger``
        seconds into the run (arrival times shift accordingly), so openings,
        steady-state traffic and closings overlap instead of aligning.
    stretch:
        Soak mode: channels whose synthetic video is shorter than
        ``duration`` are stretched to it (a marathon rerun — same chat rate,
        same highlights, a much longer quiet tail).  Long-lived quiet
        channels are where per-event serving hurts most — every
        time-triggered re-score runs against an ever-growing window history
        — so soak workloads make that regime explicit instead of being
        limited by the synthetic videos' natural two-hour lengths.
    """

    channels: int = 4
    viewers: int = 200
    duration: float = 3600.0
    batch_size: int = 1
    zipf_exponent: float = 1.0
    seed: int = 2020
    game: str = "dota2"
    stagger: float = 120.0
    stretch: bool = False

    def __post_init__(self) -> None:
        require_positive(self.channels, "channels")
        require_positive(self.viewers, "viewers")
        require_positive(self.duration, "duration")
        require_positive(self.batch_size, "batch_size")
        if self.zipf_exponent < 0:
            raise ValidationError("zipf_exponent must be >= 0")
        if self.stagger < 0:
            raise ValidationError("stagger must be >= 0")


@dataclass(frozen=True)
class WorkBatch:
    """One ingest call: a homogeneous batch of events for one channel.

    ``kind`` is ``"chat"`` or ``"plays"``; ``arrival`` is the wall-clock-like
    time (channel stagger offset + stream time of the batch's last event)
    used to order batches globally.  ``sequence`` breaks arrival ties so the
    global order is total and deterministic.
    """

    kind: str
    video_id: str
    arrival: float
    sequence: int
    events: tuple


@dataclass(frozen=True)
class ChannelPlan:
    """Everything one channel will do during the run."""

    video: Video
    start_offset: float
    duration: float
    chat: tuple[ChatMessage, ...]
    plays: tuple[Interaction, ...]
    viewers: int

    @property
    def total_events(self) -> int:
        """Chat messages plus viewer interactions this channel produces."""
        return len(self.chat) + len(self.plays)


@dataclass
class LoadWorkload:
    """A fully materialised, deterministic load-test workload.

    Build one with :meth:`from_spec`; iterate :meth:`batches` to get the
    globally ordered ingest calls.  The same spec always yields the same
    plans and the same batch sequence, so a run can be replayed — against a
    different shard count, batch size or backend — and compared
    byte-for-byte (see :mod:`repro.loadgen.driver`).
    """

    spec: WorkloadSpec
    plans: list[ChannelPlan] = field(default_factory=list)

    # ------------------------------------------------------------------ build
    @classmethod
    def from_spec(cls, spec: WorkloadSpec) -> "LoadWorkload":
        """Synthesise every channel's traffic from the simulation primitives."""
        seeds = SeedSequenceFactory(spec.seed)
        videos = VideoGenerator(seeds=seeds)
        chat = ChatSimulator(seeds=seeds)
        behavior = ViewerBehaviorModel(seeds=seeds)
        population = ViewerPopulation()
        weights = zipf_weights(spec.channels, spec.zipf_exponent)

        plans: list[ChannelPlan] = []
        for rank in range(spec.channels):
            video = videos.generate(_CHANNEL_INDEX_OFFSET + rank, game=spec.game)
            if spec.stretch and video.duration < spec.duration:
                video = replace(video, duration=spec.duration)
            duration = min(video.duration, spec.duration)
            messages = tuple(
                message
                for message in chat.simulate(video).messages
                if message.timestamp < duration
            )
            channel_viewers = max(1, int(round(spec.viewers * float(weights[rank]))))
            plays = cls._viewer_plays(behavior, population, video, duration, channel_viewers)
            plans.append(
                ChannelPlan(
                    video=video,
                    start_offset=rank * spec.stagger,
                    duration=duration,
                    chat=messages,
                    plays=plays,
                    viewers=channel_viewers,
                )
            )
        return cls(spec=spec, plans=plans)

    @staticmethod
    def _viewer_plays(
        behavior: ViewerBehaviorModel,
        population: ViewerPopulation,
        video: Video,
        duration: float,
        viewers: int,
        viewers_per_round: int = 10,
    ) -> tuple[Interaction, ...]:
        """The channel's viewer-play firehose: sessions around anchor dots.

        Viewers behave as they would around served red dots — anchors are
        placed a typical chat delay after each in-range highlight start, so
        the Type I/II regimes of the paper's Fig. 3 both occur.  Sessions
        are generated in deterministic rounds (the behaviour model keys its
        randomness on video, dot position and round index) and merged into
        one timestamp-ordered stream, matching how interactions from many
        concurrent viewers arrive at the service.
        """
        anchors = [
            RedDot(position=min(h.start + 25.0, duration - 1.0), video_id=video.video_id)
            for h in video.highlights
            if h.start < duration - 30.0
        ]
        if not anchors:
            anchors = [RedDot(position=duration / 2.0, video_id=video.video_id)]
        interactions: list[Interaction] = []
        remaining = viewers
        round_index = 0
        while remaining > 0:
            anchor = anchors[round_index % len(anchors)]
            batch = min(viewers_per_round, remaining)
            interactions.extend(
                event
                for event in behavior.simulate_round(
                    video, anchor, n_viewers=batch,
                    round_index=round_index, population=population,
                )
                if event.timestamp < duration
            )
            remaining -= batch
            round_index += 1
        interactions.sort(key=lambda event: event.timestamp)
        return tuple(interactions)

    def rebatched(self, batch_size: int) -> "LoadWorkload":
        """The same traffic chunked at a different batch size.

        Channel plans are independent of the batch size, so scaling studies
        can synthesise the fleet once and re-chunk it per grid point instead
        of regenerating chat and viewer sessions for every run.
        """
        require_positive(batch_size, "batch_size")
        return LoadWorkload(spec=replace(self.spec, batch_size=batch_size), plans=self.plans)

    # ------------------------------------------------------------------ views
    @property
    def total_chat(self) -> int:
        """Chat messages across the fleet."""
        return sum(len(plan.chat) for plan in self.plans)

    @property
    def total_plays(self) -> int:
        """Viewer interactions across the fleet."""
        return sum(len(plan.plays) for plan in self.plans)

    @property
    def total_events(self) -> int:
        """Every event the workload will push through the service."""
        return self.total_chat + self.total_plays

    def batches(self) -> list[WorkBatch]:
        """The globally ordered ingest calls of the run.

        Per channel, chat and plays are merged by stream time and chunked
        into homogeneous batches of at most ``spec.batch_size`` events; a
        batch is cut when it fills up or when the event kind flips, so
        within a channel the batch sequence preserves the event order per
        kind and interleaves the kinds at batch granularity.  Batches from
        all channels are then merged by arrival time (stagger offset + last
        event's stream time) into one total order — the sequence a
        front-door load balancer would see.
        """
        heap: list[tuple[float, str, int, WorkBatch]] = []
        for plan in self.plans:
            for batch in self._channel_batches(plan, self.spec.batch_size):
                heap.append((batch.arrival, batch.video_id, batch.sequence, batch))
        heapq.heapify(heap)
        ordered = []
        while heap:
            ordered.append(heapq.heappop(heap)[3])
        # Re-number in global order so drivers can carve deterministic slices.
        renumbered = []
        for sequence, batch in enumerate(ordered):
            renumbered.append(
                WorkBatch(
                    kind=batch.kind,
                    video_id=batch.video_id,
                    arrival=batch.arrival,
                    sequence=sequence,
                    events=batch.events,
                )
            )
        return renumbered

    def _channel_batches(self, plan: ChannelPlan, batch_size: int) -> list[WorkBatch]:
        """Chunk one channel's merged event stream into ingest batches.

        Chat and plays accumulate in **separate** collectors (as a real edge
        collector would run one buffer per telemetry kind); a collector
        flushes when it reaches ``batch_size``, stamped with its last
        event's stream time.  Per-kind event order is exactly preserved —
        which the ingest APIs require — while the two kinds interleave at
        flush granularity.  ``batch_size=1`` degenerates to one call per
        event in exact global arrival order, i.e. today's per-event traffic.
        """
        merged: list[tuple[float, int, str, object]] = []
        for index, message in enumerate(plan.chat):
            merged.append((message.timestamp, index, "chat", message))
        for index, event in enumerate(plan.plays):
            merged.append((event.timestamp, len(plan.chat) + index, "plays", event))
        merged.sort(key=lambda item: (item[0], item[1]))

        batches: list[WorkBatch] = []
        buffers: dict[str, list] = {"chat": [], "plays": []}

        def flush(kind: str) -> None:
            buffer = buffers[kind]
            if buffer:
                batches.append(
                    WorkBatch(
                        kind=kind,
                        video_id=plan.video.video_id,
                        arrival=plan.start_offset + buffer[-1].timestamp,
                        sequence=len(batches),
                        events=tuple(buffer),
                    )
                )
                buffers[kind] = []

        for _, _, kind, event in merged:
            buffers[kind].append(event)
            if len(buffers[kind]) >= batch_size:
                flush(kind)
        # End of stream: drain both collectors, oldest last event first, so
        # the tail keeps arrival order.
        for kind in sorted(buffers, key=lambda k: buffers[k][-1].timestamp if buffers[k] else 0.0):
            flush(kind)
        return batches
