"""Load generation and soak testing for the LIGHTOR service tier.

The platform's premise is implicit crowdsourcing at scale — thousands of
concurrent channels, each with a chat firehose and a viewer-play firehose.
This package generates that traffic deterministically and drives it through
the sharded service so throughput, latency and correctness can be measured
instead of assumed:

* :mod:`workload <repro.loadgen.workload>` — seedable multi-channel traffic
  synthesis from the :mod:`repro.simulation` primitives: Zipf-skewed channel
  popularity, channel lifecycle churn, per-channel chat and viewer-play
  streams chunked into ingest batches.
* :mod:`driver <repro.loadgen.driver>` — the harness: a worker pool replays
  the batches through a :class:`~repro.platform.sharding.ShardedLightorService`,
  times every call, then spot-checks the sharded concurrent results against
  a sequential single-shard oracle (zero divergences or the run fails).
  :func:`~repro.loadgen.driver.run_kill_recover` is the chaos twin: kill
  the tier mid-run, rebuild it from its durable checkpoints, and require
  byte-equivalence with an uninterrupted run.
  :func:`~repro.loadgen.driver.run_reshard` is the elasticity twin: grow
  or shrink the tier mid-run (live channel migration, in process or
  across worker processes) and require byte-equivalence with an
  undisturbed run.
* :mod:`metrics <repro.loadgen.metrics>` — per-stage throughput and latency
  percentile accounting.
* :mod:`trace <repro.loadgen.trace>` — versioned record/replay: any run can
  be recorded to a framed binary trace and replayed byte-exactly through
  any transport and codec, gated by fingerprint equality with the
  recording (``tests/traces/`` keeps a golden corpus).
* :mod:`scenarios <repro.loadgen.scenarios>` — adversarial traffic shapes
  (flash crowds, chat floods, reconnect storms, multi-tenant fairness),
  each with an explicit oracle and a ``BENCH_load.json`` entry.

Entry points: ``repro load`` on the command line,
:func:`~repro.loadgen.driver.run_load` from code, and
``benchmarks/test_bench_load.py`` for the batch-size × shard-count scaling
study (``BENCH_load.json``).  ``docs/load_testing.md`` documents the design
and how to read the results.
"""

from repro.loadgen.driver import (
    ChannelOutcome,
    KillRecoverReport,
    LoadGenerator,
    LoadReport,
    ReshardChaosReport,
    run_kill_recover,
    run_load,
    run_reshard,
)
from repro.loadgen.metrics import LatencyRecorder, StageStats, merge_recorders
from repro.loadgen.scenarios import (
    DEFAULT_KNOBS,
    SCENARIOS,
    Scenario,
    ScenarioKnobs,
    ScenarioReport,
    build_scenario_workload,
    run_scenario,
)
from repro.loadgen.trace import (
    LoadTrace,
    ReplayReport,
    ReplayWorkload,
    TraceFormatError,
    read_trace,
    replay_trace,
    write_trace,
)
from repro.loadgen.workload import (
    ChannelPlan,
    LoadWorkload,
    WorkBatch,
    WorkloadSpec,
    zipf_weights,
)

__all__ = [
    "DEFAULT_KNOBS",
    "SCENARIOS",
    "ChannelOutcome",
    "ChannelPlan",
    "KillRecoverReport",
    "LatencyRecorder",
    "LoadGenerator",
    "LoadReport",
    "LoadTrace",
    "LoadWorkload",
    "ReplayReport",
    "ReplayWorkload",
    "ReshardChaosReport",
    "Scenario",
    "ScenarioKnobs",
    "ScenarioReport",
    "StageStats",
    "TraceFormatError",
    "WorkBatch",
    "WorkloadSpec",
    "build_scenario_workload",
    "merge_recorders",
    "read_trace",
    "replay_trace",
    "run_kill_recover",
    "run_load",
    "run_reshard",
    "run_scenario",
    "write_trace",
    "zipf_weights",
]
