"""Throughput and latency accounting for load runs.

Each worker records into its own :class:`LatencyRecorder` (no locks on the
hot path); the driver merges the recorders after the run and derives
per-stage throughput and latency percentiles.  Stages are the service-call
kinds (``chat``/``plays`` ingest, channel ``open``/``close``), so a report
shows where the service boundary spends its time under a given batch size
and shard count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["StageStats", "LatencyRecorder", "merge_recorders"]


@dataclass(frozen=True)
class StageStats:
    """Aggregated measurements for one stage of the ingest pipeline.

    ``seconds`` is the sum of in-call time, so ``events / seconds`` is the
    stage's service-side throughput (what one shard's lock observes);
    wall-clock throughput across concurrent workers is reported separately
    by the driver.  Percentiles are per *call* latencies in milliseconds.
    """

    calls: int
    events: int
    seconds: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    @property
    def events_per_sec(self) -> float:
        """Events pushed through the stage per in-call second.

        A stage whose in-call seconds carry no rate information — zero
        (every call under the clock's resolution — tiny smoke runs do
        this) or so small the division overflows — reports ``0.0`` rather
        than ``inf``: ``inf`` is not valid JSON (``BENCH_load.json`` is
        written with ``allow_nan=False``, which would reject the whole
        report).
        """
        if self.seconds <= 0:
            return 0.0
        rate = self.events / self.seconds
        return rate if math.isfinite(rate) else 0.0

    def to_dict(self) -> dict:
        """JSON-friendly form (used by ``BENCH_load.json``); strictly JSON-safe."""
        return {
            "calls": self.calls,
            "events": self.events,
            "seconds": round(self.seconds, 6),
            "events_per_sec": round(self.events_per_sec, 1),
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "max_ms": self.max_ms,
        }


@dataclass
class LadderEntry:
    """Raw per-stage samples: (call latency seconds, events in the call)."""

    latencies: list[float] = field(default_factory=list)
    events: int = 0


@dataclass
class LatencyRecorder:
    """Collects per-call latencies by stage; one instance per worker."""

    _stages: dict[str, LadderEntry] = field(default_factory=dict)

    def record(self, stage: str, seconds: float, events: int = 1) -> None:
        """Record one service call of ``events`` events taking ``seconds``."""
        entry = self._stages.setdefault(stage, LadderEntry())
        entry.latencies.append(seconds)
        entry.events += events

    def stages(self) -> dict[str, LadderEntry]:
        """The raw samples by stage (used when merging recorders)."""
        return self._stages


def merge_recorders(recorders: list[LatencyRecorder]) -> dict[str, StageStats]:
    """Merge per-worker recorders into final per-stage statistics."""
    combined: dict[str, LadderEntry] = {}
    for recorder in recorders:
        for stage, entry in recorder.stages().items():
            target = combined.setdefault(stage, LadderEntry())
            target.latencies.extend(entry.latencies)
            target.events += entry.events
    stats: dict[str, StageStats] = {}
    for stage, entry in combined.items():
        latencies = np.asarray(entry.latencies, dtype=float)
        if latencies.size == 0:
            # A stage with zero recorded calls (an entry created but never
            # fed — e.g. a merged recorder from a worker that died before
            # its first call).  np.percentile/max on an empty array would
            # produce NaN or raise; report honest zeros instead, which stay
            # JSON-safe (BENCH files are written with allow_nan=False) and
            # trivially monotonic.
            stats[stage] = StageStats(
                calls=0, events=entry.events, seconds=0.0,
                p50_ms=0.0, p95_ms=0.0, p99_ms=0.0, max_ms=0.0,
            )
            continue
        p50, p95, p99 = (
            float(np.percentile(latencies, q)) * 1e3 for q in (50.0, 95.0, 99.0)
        )
        stats[stage] = StageStats(
            calls=int(latencies.size),
            events=entry.events,
            seconds=float(latencies.sum()),
            p50_ms=round(p50, 4),
            p95_ms=round(p95, 4),
            p99_ms=round(p99, 4),
            max_ms=round(float(latencies.max()) * 1e3, 4),
        )
    return stats
