"""Versioned trace record/replay for load runs.

A *trace* captures everything a loadgen run drives — every channel plan,
every ingest batch in its exact global order, every event inside each
batch — plus the end-state fingerprints the recording run produced.  Since
the whole stack is deterministic, replaying the recorded batch stream
through **any** transport (inproc/http/cluster) and **any** wire codec must
land byte-identical fingerprints; a replay that diverges from its own
recording is a regression, full stop.  That makes recorded traces the
natural substrate for regression corpora: ``tests/traces/`` checks in tiny
recordings whose golden fingerprints every future build must reproduce.

File layout (all integers big-endian)::

    offset  size  field
    0       4     magic  b"LTRC"
    4       1     trace version (1)
    5       ...   records, each: u32 frame length + one binary wire frame

Each record is a :func:`repro.platform.wire.encode_frame` blob (so traces
inherit the wire codec's CRC check, string interning, columnar batches and
bounded decompression) decoding to a dict tagged by ``"record"``:

* ``header`` — the :class:`~repro.loadgen.workload.WorkloadSpec` fields and
  the batch/event totals (used to cross-check the body);
* ``channel`` — one per channel plan: the synthetic
  :class:`~repro.core.types.Video`, start offset, duration and viewer
  count (event streams are *not* duplicated here — they are reconstructed
  from the batches, whose per-kind order is exactly the plan order);
* ``batches`` — chunks of the globally ordered ingest batches, events in
  their codec dict forms (:mod:`repro.platform.codecs`);
* ``fingerprints`` — optional trailer: the per-channel end-state
  fingerprints of the recording run plus how it was driven.

Versioning rule (same as ``docs/wire_format.md``): a reader rejects any
magic, trace version or record kind it does not know with a typed
:class:`TraceFormatError`.  Compatible extensions must use a new record
kind (old readers then fail loudly instead of silently dropping data — a
trace is a correctness oracle, not telemetry); incompatible layout changes
must bump ``TRACE_VERSION`` **and** regenerate ``tests/traces/`` via
``tools/make_trace_corpus.py`` (the golden corpus test fails until both
happen).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from pathlib import Path

from repro.loadgen.workload import ChannelPlan, LoadWorkload, WorkBatch, WorkloadSpec
from repro.platform import codecs, wire
from repro.utils.validation import ValidationError

__all__ = [
    "TRACE_MAGIC",
    "TRACE_VERSION",
    "LoadTrace",
    "ReplayReport",
    "ReplayWorkload",
    "TraceFormatError",
    "read_trace",
    "replay_trace",
    "write_trace",
]

TRACE_MAGIC = b"LTRC"
TRACE_VERSION = 1

# Batches per "batches" record: large enough that the string table and
# columnar encoding amortize, small enough that one frame stays far under
# the read cap even at soak batch sizes.
_BATCHES_PER_FRAME = 512

# Decoded-entity cap per frame, mirroring the gateway's body cap: a trace
# frame is the same kind of payload a wire request is.
_MAX_FRAME_BYTES = 64 * 1024 * 1024

_U32 = struct.Struct("!I")

_SPEC_FIELDS = (
    "channels",
    "viewers",
    "duration",
    "batch_size",
    "zipf_exponent",
    "seed",
    "game",
    "stagger",
    "stretch",
)


class TraceFormatError(ValidationError):
    """A trace file this reader must refuse (unknown, corrupt or truncated)."""


class ReplayWorkload(LoadWorkload):
    """A workload whose batch stream is a recording, not a synthesis.

    The channel plans are *reconstructed* from the recorded batches (the
    per-kind event order inside a channel's batch sequence **is** the plan
    order — ``tests/test_loadgen.py`` pins that invariant), so the driver
    sees a fully ordinary workload: plans for open/close lifecycle, batches
    for traffic.  What it can never do is re-chunk: the batch boundaries
    are part of what the trace promises to replay byte-exactly, so
    :meth:`rebatched` is refused.
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        plans: list[ChannelPlan],
        batches: list[WorkBatch],
    ) -> None:
        super().__init__(spec=spec, plans=plans)
        self._recorded = list(batches)

    def batches(self) -> list[WorkBatch]:
        """The recorded ingest calls, verbatim."""
        return list(self._recorded)

    def rebatched(self, batch_size: int) -> "LoadWorkload":
        raise ValidationError(
            "a replayed trace cannot be re-chunked: its batch boundaries are "
            "part of the recording (rebuild from the spec for a fresh workload)"
        )


@dataclass(frozen=True)
class LoadTrace:
    """A fully decoded trace file.

    ``fingerprints`` is the recording run's per-channel end state (empty
    when the trace was written without a report); ``transport`` /
    ``wire_codec`` / ``shards`` describe how the recording run was driven —
    informational only, since a replay must match on *every* transport and
    codec.
    """

    spec: WorkloadSpec
    plans: tuple[ChannelPlan, ...]
    batches: tuple[WorkBatch, ...]
    fingerprints: dict[str, str] = field(default_factory=dict)
    transport: str = "inproc"
    wire_codec: str = "json"
    shards: int = 1

    @property
    def total_events(self) -> int:
        """Events across every recorded batch."""
        return sum(len(batch.events) for batch in self.batches)

    def workload(self) -> ReplayWorkload:
        """The trace as a drivable workload (fresh plan/batch lists)."""
        return ReplayWorkload(self.spec, list(self.plans), list(self.batches))


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of replaying a trace against its recorded fingerprints.

    ``mismatches`` lists channels whose replayed end state differed from
    the recording (byte inequality of the canonical-JSON fingerprints);
    ``missing`` lists recorded channels the replay never closed.  Both must
    be empty — the whole point of a trace is that they are.
    """

    report: object
    mismatches: list[str] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)
    checked: int = 0

    @property
    def ok(self) -> bool:
        """Whether the replay reproduced the recording byte-for-byte."""
        return not self.mismatches and not self.missing

    def describe(self) -> str:
        """Multi-line human-readable summary for the CLI."""
        lines = [self.report.describe()]
        if self.ok:
            lines.append(
                f"  replay fingerprints: {self.checked} channel(s) "
                "byte-identical to the recording"
            )
        else:
            broken = self.mismatches + [f"{vid} (never closed)" for vid in self.missing]
            lines.append(
                f"  REPLAY DIVERGENCE on {len(broken)} channel(s): " + ", ".join(broken)
            )
        return "\n".join(lines)


# --------------------------------------------------------------------- writing
def _batch_to_dict(batch: WorkBatch) -> dict:
    if batch.kind == "chat":
        events = [codecs.chat_message_to_dict(event) for event in batch.events]
    elif batch.kind == "plays":
        events = [codecs.interaction_to_dict(event) for event in batch.events]
    else:  # pragma: no cover - workload only emits the two kinds
        raise ValidationError(f"unknown batch kind {batch.kind!r}")
    return {
        "kind": batch.kind,
        "video_id": batch.video_id,
        "arrival": batch.arrival,
        "sequence": batch.sequence,
        "events": events,
    }


def _frame(payload: dict) -> bytes:
    blob = wire.encode_frame(payload)
    return _U32.pack(len(blob)) + blob


def write_trace(
    path,
    workload: LoadWorkload,
    *,
    fingerprints: dict[str, str] | None = None,
    transport: str = "inproc",
    wire_codec: str = "json",
    shards: int = 1,
) -> int:
    """Record ``workload`` (and optionally its run's fingerprints) to ``path``.

    Returns the number of bytes written.  Pass the driving run's
    ``fingerprints`` (``{video_id: fingerprint}`` — e.g. from
    :attr:`LoadReport.outcomes <repro.loadgen.driver.LoadReport>`) to arm
    the replay gate; a trace written without them can still be replayed,
    but only against a sequential oracle.
    """
    batches = workload.batches()
    spec = workload.spec
    chunks: list[bytes] = [TRACE_MAGIC + bytes([TRACE_VERSION])]
    chunks.append(
        _frame(
            {
                "record": "header",
                "trace_version": TRACE_VERSION,
                "spec": {name: getattr(spec, name) for name in _SPEC_FIELDS},
                "channels": len(workload.plans),
                "total_batches": len(batches),
                "total_events": sum(len(batch.events) for batch in batches),
            }
        )
    )
    for plan in workload.plans:
        chunks.append(
            _frame(
                {
                    "record": "channel",
                    "video": codecs.video_to_dict(plan.video),
                    "start_offset": plan.start_offset,
                    "duration": plan.duration,
                    "viewers": plan.viewers,
                }
            )
        )
    for start in range(0, len(batches), _BATCHES_PER_FRAME):
        chunk = batches[start : start + _BATCHES_PER_FRAME]
        chunks.append(
            _frame({"record": "batches", "batches": [_batch_to_dict(b) for b in chunk]})
        )
    if fingerprints is not None:
        chunks.append(
            _frame(
                {
                    "record": "fingerprints",
                    "fingerprints": dict(sorted(fingerprints.items())),
                    "transport": transport,
                    "wire_codec": wire_codec,
                    "shards": shards,
                }
            )
        )
    blob = b"".join(chunks)
    Path(path).write_bytes(blob)
    return len(blob)


# --------------------------------------------------------------------- reading
def _read_frames(blob: bytes):
    offset = len(TRACE_MAGIC) + 1
    while offset < len(blob):
        if offset + _U32.size > len(blob):
            raise TraceFormatError("truncated trace: frame length cut short")
        (length,) = _U32.unpack_from(blob, offset)
        offset += _U32.size
        if offset + length > len(blob):
            raise TraceFormatError(
                f"truncated trace: frame declares {length} bytes, "
                f"{len(blob) - offset} remain"
            )
        frame = blob[offset : offset + length]
        offset += length
        try:
            payload = wire.decode_frame(frame, max_raw_bytes=_MAX_FRAME_BYTES)
        except wire.CodecError as error:
            raise TraceFormatError(f"corrupt trace frame: {error}") from error
        if not isinstance(payload, dict) or "record" not in payload:
            raise TraceFormatError("trace frame is not a tagged record")
        yield payload


def _events_from_dicts(kind: str, events: list) -> tuple:
    if kind == "chat":
        return tuple(codecs.chat_message_from_dict(item) for item in events)
    if kind == "plays":
        return tuple(codecs.interaction_from_dict(item) for item in events)
    raise TraceFormatError(f"unknown batch kind {kind!r} in trace")


def _rebuild_plans(
    channels: list[dict], batches: list[WorkBatch]
) -> list[ChannelPlan]:
    """Reconstruct channel plans from the recorded batch streams.

    Within one channel the batch sequence preserves per-kind event order
    exactly (that is how the workload chunker cuts batches), so
    concatenating a channel's chat batches — and separately its play
    batches — in recorded order yields the original plan streams.
    """
    by_channel: dict[str, dict[str, list]] = {}
    for batch in batches:
        streams = by_channel.setdefault(batch.video_id, {"chat": [], "plays": []})
        streams[batch.kind].extend(batch.events)
    plans: list[ChannelPlan] = []
    for channel in channels:
        video = codecs.video_from_dict(channel["video"])
        streams = by_channel.get(video.video_id, {"chat": [], "plays": []})
        plans.append(
            ChannelPlan(
                video=video,
                start_offset=channel["start_offset"],
                duration=channel["duration"],
                chat=tuple(streams["chat"]),
                plays=tuple(streams["plays"]),
                viewers=channel["viewers"],
            )
        )
    return plans


def read_trace(path) -> LoadTrace:
    """Decode a trace file, refusing anything this version does not know."""
    blob = Path(path).read_bytes()
    if len(blob) < len(TRACE_MAGIC) + 1:
        raise TraceFormatError(f"not a trace file: {len(blob)} bytes")
    if blob[: len(TRACE_MAGIC)] != TRACE_MAGIC:
        raise TraceFormatError(
            f"bad trace magic {blob[:len(TRACE_MAGIC)]!r} (expected {TRACE_MAGIC!r})"
        )
    version = blob[len(TRACE_MAGIC)]
    if version != TRACE_VERSION:
        raise TraceFormatError(
            f"unsupported trace version {version} (this reader knows {TRACE_VERSION}); "
            "regenerate the trace or upgrade"
        )

    header: dict | None = None
    channels: list[dict] = []
    batches: list[WorkBatch] = []
    trailer: dict | None = None
    for payload in _read_frames(blob):
        record = payload["record"]
        if record == "header":
            if header is not None:
                raise TraceFormatError("trace carries more than one header record")
            header = payload
        elif record == "channel":
            channels.append(payload)
        elif record == "batches":
            for item in payload["batches"]:
                batches.append(
                    WorkBatch(
                        kind=item["kind"],
                        video_id=item["video_id"],
                        arrival=item["arrival"],
                        sequence=item["sequence"],
                        events=_events_from_dicts(item["kind"], item["events"]),
                    )
                )
        elif record == "fingerprints":
            trailer = payload
        else:
            raise TraceFormatError(
                f"unknown trace record kind {record!r} "
                "(a newer writer? this reader refuses what it cannot replay)"
            )
    if header is None:
        raise TraceFormatError("trace has no header record")
    try:
        spec = WorkloadSpec(**{name: header["spec"][name] for name in _SPEC_FIELDS})
    except (KeyError, TypeError) as error:
        raise TraceFormatError(f"trace header spec is malformed: {error!r}") from error
    if len(channels) != header["channels"]:
        raise TraceFormatError(
            f"trace declares {header['channels']} channel(s) but carries {len(channels)}"
        )
    if len(batches) != header["total_batches"]:
        raise TraceFormatError(
            f"trace declares {header['total_batches']} batch(es) but carries {len(batches)}"
        )
    total_events = sum(len(batch.events) for batch in batches)
    if total_events != header["total_events"]:
        raise TraceFormatError(
            f"trace declares {header['total_events']} event(s) but carries {total_events}"
        )
    plans = _rebuild_plans(channels, batches)
    kwargs: dict = {}
    if trailer is not None:
        kwargs = {
            "fingerprints": dict(trailer["fingerprints"]),
            "transport": trailer["transport"],
            "wire_codec": trailer["wire_codec"],
            "shards": trailer["shards"],
        }
    return LoadTrace(spec=spec, plans=tuple(plans), batches=tuple(batches), **kwargs)


# --------------------------------------------------------------------- replay
def replay_trace(
    trace: LoadTrace,
    initializer,
    *,
    shards: int = 1,
    workers: int = 4,
    backend: str = "memory",
    db_path=None,
    oracle: bool = True,
    transport: str = "inproc",
    wire_codec: str = "json",
    cluster_seed: int = 2020,
    per_channel_pending: int | None = None,
) -> ReplayReport:
    """Drive a trace's recorded batches and gate on fingerprint equality.

    The replay may use any transport, codec, shard or worker count — the
    recorded fingerprints are transport- and codec-blind, so every
    combination must reproduce them byte-for-byte.  When the trace carries
    no fingerprints (recorded without a report) the gate falls back to the
    sequential oracle alone.
    """
    from repro.loadgen.driver import run_load

    report = run_load(
        trace.spec,
        initializer,
        shards=shards,
        workers=workers,
        backend=backend,
        db_path=db_path,
        oracle=oracle,
        workload=trace.workload(),
        transport=transport,
        wire_codec=wire_codec,
        cluster_seed=cluster_seed,
        per_channel_pending=per_channel_pending,
    )
    mismatches = [
        video_id
        for video_id, recorded in sorted(trace.fingerprints.items())
        if video_id in report.outcomes
        and report.outcomes[video_id].fingerprint != recorded
    ]
    missing = [
        video_id
        for video_id in sorted(trace.fingerprints)
        if video_id not in report.outcomes
    ]
    return ReplayReport(
        report=report,
        mismatches=mismatches,
        missing=missing,
        checked=len(trace.fingerprints),
    )
