"""Adversarial load scenarios: the traffic shapes that break live systems.

The base workload is a *steady* Zipf fleet — useful for scaling studies,
useless for the failure modes that actually page people.  Each scenario
here perturbs a :class:`~repro.loadgen.workload.WorkloadSpec`'s fleet into
one of those shapes, deterministically (same spec ⇒ byte-identical
traffic, like everything in :mod:`repro.loadgen`), and ships with an
explicit oracle:

* ``flash-crowd`` — the head channel's viewership multiplies within a
  short surge window (a raid / frontpage moment): extra viewer sessions
  are generated past the base rounds and their timestamps compressed into
  the window.  Oracle: the sequential single-shard spot-check (the surge
  must not perturb a single byte of any channel's end state).
* ``chat-flood`` — one channel is spammed with a deterministic bot flood
  several times its organic chat volume.  Oracle: sequential spot-check.
* ``reconnect-storm`` — every batch that would have arrived during a
  simulated outage window arrives *at once* when the outage lifts (the
  thundering herd of reconnecting clients).  Only batch *arrivals* move —
  contents and per-channel order are untouched — so the oracle is
  fingerprint equality with the unperturbed base run **plus** the
  sequential spot-check.
* ``fairness`` — an extreme-skew fleet (one whale channel, a long tail)
  driven against per-channel admission budgets
  (``--max-pending-per-channel``): the gateway must refuse the whale's
  excess instead of letting it starve the tail out of the global budget.
  Oracle: sequential spot-check here; the 503-the-whale/serve-the-tail
  property itself is pinned at the gateway level in
  ``tests/test_server.py``.

``run_scenario`` is the one-call entry point (``repro load --scenario``);
``benchmarks/test_bench_scenarios.py`` records every scenario's throughput
and oracle verdict in ``BENCH_load.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

from repro.core.types import ChatMessage, RedDot
from repro.loadgen.workload import (
    ChannelPlan,
    LoadWorkload,
    WorkBatch,
    WorkloadSpec,
)
from repro.simulation.viewers import ViewerBehaviorModel, ViewerPopulation
from repro.utils.rng import SeedSequenceFactory
from repro.utils.validation import ValidationError

__all__ = [
    "DEFAULT_KNOBS",
    "SCENARIOS",
    "Scenario",
    "ScenarioKnobs",
    "ScenarioReport",
    "build_scenario_workload",
    "run_scenario",
]

# Shape parameters that stay fixed: the *when* of each perturbation.  The
# severity parameters (how big the surge/flood/outage is) are CLI-tunable
# via ScenarioKnobs below.
_SURGE_START_FRAC = 0.25
_SURGE_WINDOW_SECONDS = 60.0
_VIEWERS_PER_ROUND = 10
_FLOOD_START_FRAC = 0.3
_FLOOD_WINDOW_SECONDS = 120.0

# Fairness: the whale-and-tail skew exponent.
_FAIRNESS_ZIPF = 3.0


@dataclass(frozen=True)
class ScenarioKnobs:
    """Severity knobs for the adversarial scenarios.

    The defaults reproduce the shapes the benchmarks record
    (``BENCH_load.json``); ``repro load --scenario-*`` flags override them
    per run.  Every field is validated on construction so a bad CLI value
    fails before any traffic is synthesised.

    surge_factor:
        ``flash-crowd`` — the head channel's viewership multiplier.
    flood_factor:
        ``chat-flood`` — spam messages per organic chat message (with a
        floor of 64 spam messages so tiny fleets still flood).
    outage_start_frac / outage_length_frac:
        ``reconnect-storm`` — where the outage window starts and how long
        it lasts, both as fractions of the latest batch arrival.
    """

    surge_factor: int = 20
    flood_factor: int = 4
    outage_start_frac: float = 0.35
    outage_length_frac: float = 0.25

    def __post_init__(self) -> None:
        if not isinstance(self.surge_factor, int) or self.surge_factor < 1:
            raise ValidationError(
                f"surge_factor must be an integer >= 1, got {self.surge_factor!r}"
            )
        if not isinstance(self.flood_factor, int) or self.flood_factor < 1:
            raise ValidationError(
                f"flood_factor must be an integer >= 1, got {self.flood_factor!r}"
            )
        if not 0.0 <= self.outage_start_frac < 1.0:
            raise ValidationError(
                f"outage_start_frac must be in [0, 1), got {self.outage_start_frac!r}"
            )
        if not 0.0 < self.outage_length_frac <= 1.0:
            raise ValidationError(
                f"outage_length_frac must be in (0, 1], got {self.outage_length_frac!r}"
            )
        if self.outage_start_frac + self.outage_length_frac > 1.0:
            raise ValidationError(
                "the outage window must end within the run: "
                f"start {self.outage_start_frac} + length {self.outage_length_frac} > 1"
            )


DEFAULT_KNOBS = ScenarioKnobs()


def _surge_anchors(plan: ChannelPlan) -> list[RedDot]:
    """The anchor dots viewer sessions orbit — same rule as the workload."""
    video, duration = plan.video, plan.duration
    anchors = [
        RedDot(position=min(h.start + 25.0, duration - 1.0), video_id=video.video_id)
        for h in video.highlights
        if h.start < duration - 30.0
    ]
    return anchors or [RedDot(position=duration / 2.0, video_id=video.video_id)]


def _flash_crowd(spec: WorkloadSpec, knobs: ScenarioKnobs) -> LoadWorkload:
    """The head channel's viewership ``surge_factor``-xes inside the window."""
    workload = LoadWorkload.from_spec(spec)
    head = workload.plans[0]
    anchors = _surge_anchors(head)
    behavior = ViewerBehaviorModel(seeds=SeedSequenceFactory(spec.seed))
    population = ViewerPopulation()

    # Continue the deterministic round sequence past where the base plan
    # stopped: the behaviour model keys its randomness on (video, dot,
    # round index), so rounds the base never ran are fresh sessions and the
    # base plan's own sessions are untouched.
    base_rounds = -(-head.viewers // _VIEWERS_PER_ROUND)
    extra_viewers = head.viewers * (knobs.surge_factor - 1)
    surge_start = head.duration * _SURGE_START_FRAC
    window = min(_SURGE_WINDOW_SECONDS, max(1.0, head.duration - surge_start - 1.0))

    surge = []
    remaining = extra_viewers
    round_index = base_rounds
    while remaining > 0:
        anchor = anchors[round_index % len(anchors)]
        batch = min(_VIEWERS_PER_ROUND, remaining)
        for event in behavior.simulate_round(
            head.video, anchor, n_viewers=batch,
            round_index=round_index, population=population,
        ):
            # Compress the session into the surge window: the whole crowd
            # arrives within seconds, not spread over the stream.
            position = surge_start + (event.timestamp / head.duration) * window
            if position < head.duration:
                surge.append(replace(event, timestamp=position))
        remaining -= batch
        round_index += 1

    merged = sorted(head.plays + tuple(surge), key=lambda event: event.timestamp)
    plans = list(workload.plans)
    plans[0] = replace(
        head, plays=tuple(merged), viewers=head.viewers * knobs.surge_factor
    )
    return LoadWorkload(spec=spec, plans=plans)


def _chat_flood(spec: WorkloadSpec, knobs: ScenarioKnobs) -> LoadWorkload:
    """One channel is spammed with a deterministic bot flood."""
    workload = LoadWorkload.from_spec(spec)
    head = workload.plans[0]
    flood_start = head.duration * _FLOOD_START_FRAC
    window = min(_FLOOD_WINDOW_SECONDS, max(1.0, head.duration - flood_start - 1.0))
    count = max(64, knobs.flood_factor * len(head.chat))
    flood = tuple(
        ChatMessage(
            timestamp=min(flood_start + (index * window) / count, head.duration - 1e-6),
            user=f"flood-bot-{index % 97}",
            text="SPAM SPAM SPAM raid raid raid",
        )
        for index in range(count)
    )
    merged = sorted(head.chat + flood, key=lambda message: message.timestamp)
    plans = list(workload.plans)
    plans[0] = replace(head, chat=tuple(merged))
    return LoadWorkload(spec=spec, plans=plans)


@dataclass
class _ReconnectStormWorkload(LoadWorkload):
    """A workload whose batch arrivals collapse onto the outage end.

    Every batch whose arrival falls inside the outage window is remapped to
    arrive exactly when the outage lifts — the thundering herd.  Contents
    and per-channel relative order are untouched (the global re-sort keys
    on ``(arrival, video_id, sequence)`` and the original global sequence
    preserves per-channel order), so the end state must be byte-identical
    to the unperturbed run — which is exactly the scenario's oracle.
    """

    outage_start_frac: float = DEFAULT_KNOBS.outage_start_frac
    outage_length_frac: float = DEFAULT_KNOBS.outage_length_frac

    def batches(self) -> list[WorkBatch]:
        base = super().batches()
        if not base:
            return base
        horizon = max(batch.arrival for batch in base)
        outage_start = horizon * self.outage_start_frac
        outage_end = outage_start + horizon * self.outage_length_frac
        remapped = [
            replace(batch, arrival=outage_end)
            if outage_start <= batch.arrival < outage_end
            else batch
            for batch in base
        ]
        remapped.sort(key=lambda batch: (batch.arrival, batch.video_id, batch.sequence))
        return [
            replace(batch, sequence=sequence)
            for sequence, batch in enumerate(remapped)
        ]


def _reconnect_storm(spec: WorkloadSpec, knobs: ScenarioKnobs) -> LoadWorkload:
    workload = LoadWorkload.from_spec(spec)
    return _ReconnectStormWorkload(
        spec=spec,
        plans=workload.plans,
        outage_start_frac=knobs.outage_start_frac,
        outage_length_frac=knobs.outage_length_frac,
    )


def _fairness(spec: WorkloadSpec, knobs: ScenarioKnobs) -> LoadWorkload:
    """One whale channel and a starving tail: extreme Zipf skew."""
    return LoadWorkload.from_spec(replace(spec, zipf_exponent=_FAIRNESS_ZIPF))


@dataclass(frozen=True)
class Scenario:
    """One adversarial traffic shape and how to judge a run of it.

    ``oracle`` is ``"sequential"`` (the single-shard spot-check must report
    zero divergences) or ``"baseline"`` (additionally, fingerprints must
    equal the *unperturbed* base workload's sequential run byte-for-byte).
    """

    name: str
    description: str
    build: Callable[[WorkloadSpec, ScenarioKnobs], LoadWorkload]
    oracle: str = "sequential"


SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="flash-crowd",
            description=(
                f"head channel viewership {DEFAULT_KNOBS.surge_factor}x-es "
                f"(default) inside a {_SURGE_WINDOW_SECONDS:.0f}s surge window"
            ),
            build=_flash_crowd,
        ),
        Scenario(
            name="chat-flood",
            description=(
                f"head channel spammed with {DEFAULT_KNOBS.flood_factor}x "
                "(default) its organic chat volume of bot messages"
            ),
            build=_chat_flood,
        ),
        Scenario(
            name="reconnect-storm",
            description=(
                "every batch due during a simulated outage arrives at once "
                "when it lifts"
            ),
            build=_reconnect_storm,
            oracle="baseline",
        ),
        Scenario(
            name="fairness",
            description=(
                f"extreme-skew fleet (zipf {_FAIRNESS_ZIPF}) against "
                "per-channel admission budgets"
            ),
            build=_fairness,
        ),
    )
}


def build_scenario_workload(
    name: str, spec: WorkloadSpec, knobs: ScenarioKnobs | None = None
) -> LoadWorkload:
    """The named scenario's perturbed workload for ``spec``."""
    scenario = SCENARIOS.get(name)
    if scenario is None:
        raise ValidationError(
            f"unknown scenario {name!r} (expected one of {sorted(SCENARIOS)})"
        )
    return scenario.build(spec, knobs or DEFAULT_KNOBS)


@dataclass(frozen=True)
class ScenarioReport:
    """A scenario run, its load report and every oracle verdict."""

    name: str
    oracle: str
    report: object
    workload: LoadWorkload
    baseline_divergences: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every oracle the scenario declares held."""
        return not self.report.divergences and not self.baseline_divergences

    def describe(self) -> str:
        """Multi-line human-readable summary for the CLI."""
        scenario = SCENARIOS[self.name]
        lines = [f"scenario {self.name}: {scenario.description}", self.report.describe()]
        if self.oracle == "baseline":
            if self.baseline_divergences:
                lines.append(
                    "  BASELINE DIVERGENCE on "
                    f"{len(self.baseline_divergences)} channel(s): "
                    + ", ".join(self.baseline_divergences)
                )
            else:
                lines.append(
                    "  baseline check: fingerprints byte-identical to the "
                    "unperturbed run"
                )
        return "\n".join(lines)


def run_scenario(
    name: str,
    spec: WorkloadSpec,
    initializer,
    *,
    shards: int = 1,
    workers: int = 4,
    backend: str = "memory",
    db_path=None,
    oracle: bool = True,
    transport: str = "inproc",
    wire_codec: str = "json",
    cluster_seed: int = 2020,
    per_channel_pending: int | None = None,
    knobs: ScenarioKnobs | None = None,
) -> ScenarioReport:
    """Build the named scenario's workload, drive it, judge it.

    ``per_channel_pending`` arms the gateway's per-channel admission budget
    on wire transports (the ``fairness`` scenario's subject); the harness
    gives each channel a single driver worker — at most one request in
    flight per channel — so any budget ≥ 1 never refuses the drive itself.
    """
    from repro.loadgen.driver import run_load

    scenario = SCENARIOS.get(name)
    if scenario is None:
        raise ValidationError(
            f"unknown scenario {name!r} (expected one of {sorted(SCENARIOS)})"
        )
    workload = scenario.build(spec, knobs or DEFAULT_KNOBS)
    report = run_load(
        spec,
        initializer,
        shards=shards,
        workers=workers,
        backend=backend,
        db_path=db_path,
        oracle=oracle,
        workload=workload,
        transport=transport,
        wire_codec=wire_codec,
        cluster_seed=cluster_seed,
        per_channel_pending=per_channel_pending,
    )

    baseline_divergences: list[str] = []
    if scenario.oracle == "baseline" and oracle:
        # The perturbation promises to change *when* batches arrive, never
        # what they contain — so the scenario's end state must equal the
        # unperturbed workload's, byte for byte.
        base = run_load(
            spec,
            initializer,
            shards=1,
            workers=1,
            backend="memory",
            oracle=False,
            workload=LoadWorkload.from_spec(spec),
        )
        baseline_divergences = [
            video_id
            for video_id, outcome in sorted(base.outcomes.items())
            if report.outcomes.get(video_id) is None
            or report.outcomes[video_id].fingerprint != outcome.fingerprint
        ]

    return ScenarioReport(
        name=name,
        oracle=scenario.oracle,
        report=report,
        workload=workload,
        baseline_divergences=baseline_divergences,
    )
