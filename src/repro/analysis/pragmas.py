"""Comment-level annotations understood by lintor.

Three comment forms carry analyzer state, collected with :mod:`tokenize`
so they survive anywhere the grammar allows a comment:

* ``# lintor: disable=R003 reason=payload is a finite fingerprint`` —
  suppress the named rule(s) on that line.  The reason is mandatory;
  a disable without one is itself a finding (rule R000).
* ``# guarded-by: _lock`` — trailing an attribute assignment: every
  other access to that attribute must happen inside ``with self._lock:``
  (or in ``__init__``).  The special guard name ``event-loop`` confines
  the attribute to the asyncio event loop instead of a lock.
* ``# runs-on: event-loop`` — trailing a ``def`` line: marks a *sync*
  function as loop-confined, so it may touch ``event-loop``-guarded
  attributes but must never be handed to a thread or executor.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["FileComments", "collect_comments"]

_DISABLE_RE = re.compile(
    r"#\s*lintor:\s*disable=(?P<rules>[A-Za-z0-9,\s]*?)(?:\s+reason=(?P<reason>.*))?$"
)
_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*(?P<guard>[A-Za-z_][A-Za-z0-9_\-]*)")
_RUNS_ON_RE = re.compile(r"#\s*runs-on:\s*event-loop\b")
_RULE_CODE_RE = re.compile(r"^R\d{3}$")


@dataclass
class FileComments:
    """Per-file annotation state extracted from comments."""

    #: line -> set of rule codes disabled on that line
    disables: dict[int, set[str]] = field(default_factory=dict)
    #: (line, message) pairs for malformed pragmas (reported as R000)
    malformed: list[tuple[int, str]] = field(default_factory=list)
    #: line -> guard name for ``# guarded-by:`` declarations
    guards: dict[int, str] = field(default_factory=dict)
    #: lines carrying ``# runs-on: event-loop``
    loop_marked: set[int] = field(default_factory=set)


def collect_comments(source: str) -> FileComments:
    """Tokenize ``source`` and extract every lintor-relevant comment."""
    comments = FileComments()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        stream = [tok for tok in tokens if tok.type == tokenize.COMMENT]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # The AST parse will report the syntax problem; comments are moot.
        return comments
    for tok in stream:
        line = tok.start[0]
        text = tok.string
        match = _DISABLE_RE.search(text)
        if match:
            _record_disable(comments, line, match)
            continue
        if "lintor:" in text:
            comments.malformed.append(
                (line, f"unrecognized lintor pragma {text.strip()!r}")
            )
            continue
        match = _GUARDED_RE.search(text)
        if match:
            comments.guards[line] = match.group("guard")
            continue
        if _RUNS_ON_RE.search(text):
            comments.loop_marked.add(line)
    return comments


def _record_disable(comments: FileComments, line: int, match: re.Match) -> None:
    rules = [code.strip() for code in match.group("rules").split(",") if code.strip()]
    reason = (match.group("reason") or "").strip()
    if not rules:
        comments.malformed.append((line, "lintor disable pragma names no rule"))
        return
    bad = [code for code in rules if not _RULE_CODE_RE.match(code)]
    if bad:
        comments.malformed.append(
            (line, f"lintor disable pragma has malformed rule code(s) {', '.join(bad)}")
        )
        return
    if not reason:
        comments.malformed.append(
            (line, f"lintor disable pragma for {', '.join(rules)} must give a reason=")
        )
        return
    comments.disables.setdefault(line, set()).update(rules)
