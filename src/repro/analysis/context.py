"""Per-module analysis context shared by every lintor rule.

One parse of the file yields everything the rules need: the AST with
parent back-links, the comment annotations, and an import table so call
sites can be resolved to canonical dotted names (``time.sleep`` whether
the module wrote ``import time``, ``import time as t`` or
``from time import sleep``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.pragmas import FileComments, collect_comments

__all__ = ["ModuleContext", "build_context"]


@dataclass
class ModuleContext:
    """Everything a rule needs to inspect one module."""

    relpath: str
    source: str
    tree: ast.Module
    comments: FileComments
    #: child node -> parent node, for lexical-scope questions
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)
    #: local alias -> canonical dotted prefix (``import time as t`` -> {"t": "time"})
    import_aliases: dict[str, str] = field(default_factory=dict)
    #: local name -> canonical dotted name (``from time import sleep`` -> {"sleep": "time.sleep"})
    from_imports: dict[str, str] = field(default_factory=dict)

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self.parents.get(node)

    def ancestors(self, node: ast.AST):
        """Yield ancestors from the immediate parent up to the module."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def resolve_call(self, func: ast.expr) -> str | None:
        """Resolve a call's function expression to a canonical dotted name.

        ``Name`` nodes map through the import tables (falling back to the
        bare name, which is how builtins like ``open`` resolve).
        ``Attribute`` chains rooted at an imported module resolve to the
        canonical module path; chains rooted elsewhere (``self.x.y``)
        return ``None`` — rules that care about those match the AST shape
        directly.
        """
        if isinstance(func, ast.Name):
            if func.id in self.from_imports:
                return self.from_imports[func.id]
            if func.id in self.import_aliases:
                return self.import_aliases[func.id]
            return func.id
        if isinstance(func, ast.Attribute):
            parts: list[str] = [func.attr]
            node: ast.expr = func.value
            while isinstance(node, ast.Attribute):
                parts.append(node.attr)
                node = node.value
            if not isinstance(node, ast.Name):
                return None
            root = node.id
            if root in self.import_aliases:
                root = self.import_aliases[root]
            elif root in self.from_imports:
                root = self.from_imports[root]
            else:
                return None
            parts.append(root)
            return ".".join(reversed(parts))
        return None


def build_context(source: str, relpath: str) -> ModuleContext:
    """Parse ``source`` and assemble the shared analysis context.

    Raises :class:`SyntaxError` when the file does not parse; the engine
    converts that into an R000 finding.
    """
    tree = ast.parse(source)
    ctx = ModuleContext(
        relpath=relpath,
        source=source,
        tree=tree,
        comments=collect_comments(source),
    )
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            ctx.parents[child] = node
        if isinstance(node, ast.Import):
            for alias in node.names:
                ctx.import_aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                ctx.from_imports[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return ctx
