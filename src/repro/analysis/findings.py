"""Finding model for the lintor static analyzer.

A finding is one rule violation at one source location.  Findings are
value objects: hashable, ordered by location, and round-trippable through
JSON so the committed baseline (``tools/lintor_baseline.json``) can store
them verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.validation import ValidationError

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``fixit`` is advisory prose (how to repair the violation) and is
    deliberately excluded from the identity used for baseline matching —
    rewording a fix-it must not invalidate a committed baseline.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    fixit: str = field(default="", compare=False)

    def key(self) -> tuple[str, int, str, str]:
        """Baseline identity: column excluded so cosmetic reindents
        inside a line do not churn the baseline."""
        return (self.path, self.line, self.rule, self.message)

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.fixit:
            text += f" [fix: {self.fixit}]"
        return text

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: object) -> "Finding":
        if not isinstance(payload, dict):
            raise ValidationError(f"baseline finding must be an object, got {type(payload).__name__}")
        try:
            rule = payload["rule"]
            path = payload["path"]
            line = payload["line"]
            message = payload["message"]
        except KeyError as error:
            raise ValidationError(f"baseline finding is missing key {error.args[0]!r}") from error
        col = payload.get("col", 0)
        if not isinstance(rule, str) or not isinstance(path, str) or not isinstance(message, str):
            raise ValidationError("baseline finding fields rule/path/message must be strings")
        if not isinstance(line, int) or not isinstance(col, int):
            raise ValidationError("baseline finding fields line/col must be integers")
        return cls(path=path, line=line, col=col, rule=rule, message=message)
