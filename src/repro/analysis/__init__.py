"""lintor — the repo-aware static analyzer for the LIGHTOR platform.

The serving stack's correctness rests on conventions no generic linter
knows: strict JSON on every wire surface (``allow_nan=False``), the typed
error hierarchy (``CodecError ⊂ ValidationError ⊂ ValueError``),
lock-guarded mutation in the shard tier, never blocking the asyncio
event loop, and decode-time rejection of unknown frame versions.  This
package checks those contracts statically — the violations the dynamic
suites (hypothesis, oracles, chaos runs) can only hit probabilistically.

* :mod:`rules <repro.analysis.rules>` — the catalogue, R001–R006
* :mod:`pragmas <repro.analysis.pragmas>` — ``# guarded-by:``,
  ``# runs-on: event-loop`` and ``# lintor: disable=`` comment syntax
* :mod:`engine <repro.analysis.engine>` — file walking, suppression
* :mod:`baseline <repro.analysis.baseline>` — the shrink-only ledger

Entry points: ``repro lint`` on the command line, ``tools/run_lintor.py``
standalone, and :func:`analyze_paths` from code.  ``docs/static_analysis.md``
documents the rule catalogue and annotation syntax.
"""

from repro.analysis.baseline import (
    BaselineDelta,
    compare_to_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import analyze_paths, analyze_source, iter_python_files
from repro.analysis.findings import Finding
from repro.analysis.rules import RULE_DOCS, RULES

__all__ = [
    "BaselineDelta",
    "Finding",
    "RULES",
    "RULE_DOCS",
    "analyze_paths",
    "analyze_source",
    "compare_to_baseline",
    "iter_python_files",
    "load_baseline",
    "write_baseline",
]
