"""The lintor engine: walk files, run rules, apply pragmas.

The engine is deliberately small — all repo knowledge lives in
:mod:`~repro.analysis.rules`; all annotation syntax lives in
:mod:`~repro.analysis.pragmas`.  What remains here is plumbing:
file discovery, the parse, suppression, and stable ordering.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.analysis.context import build_context
from repro.analysis.findings import Finding
from repro.analysis.rules import RULES

__all__ = ["analyze_source", "analyze_paths", "iter_python_files"]

_SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache", ".hypothesis"}


def analyze_source(source: str, relpath: str) -> list[Finding]:
    """Analyze one module's source, returning suppressed+sorted findings."""
    try:
        ctx = build_context(source, relpath)
    except SyntaxError as error:
        return [
            Finding(
                path=relpath,
                line=error.lineno or 1,
                col=(error.offset or 1) - 1,
                rule="R000",
                message=f"file does not parse: {error.msg}",
                fixit="fix the syntax error; lintor cannot analyze what Python cannot parse",
            )
        ]
    findings: list[Finding] = []
    for check in RULES.values():
        findings.extend(check(ctx))
    findings = [
        f
        for f in findings
        if f.rule not in ctx.comments.disables.get(f.line, set())
    ]
    for line, message in ctx.comments.malformed:
        findings.append(
            Finding(
                path=relpath,
                line=line,
                col=0,
                rule="R000",
                message=message,
                fixit="write `# lintor: disable=RXXX reason=<why this exception is sound>`",
            )
        )
    return sorted(findings)


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            for root, dirnames, filenames in os.walk(path):
                dirnames[:] = [d for d in dirnames if d not in _SKIP_DIRS]
                for filename in filenames:
                    if filename.endswith(".py"):
                        files.add(Path(root) / filename)
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def analyze_paths(paths: list[Path], root: Path) -> list[Finding]:
    """Analyze every ``.py`` file under ``paths``.

    Finding paths are reported relative to ``root`` (posix separators) so
    the committed baseline is machine-independent.
    """
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        relpath = os.path.relpath(file_path, root).replace(os.sep, "/")
        source = file_path.read_text(encoding="utf-8")
        findings.extend(analyze_source(source, relpath))
    return sorted(findings)
