"""The lintor rule catalogue (R001–R006).

Each rule is a function from a :class:`~repro.analysis.context.ModuleContext`
to a list of findings.  The rules encode this repo's contracts — the
conventions the platform's correctness rests on but that no generic
linter knows about:

====  ===================  ====================================================
Code  Name                 Contract
====  ===================  ====================================================
R001  event-loop-blocking  no blocking calls inside ``async def`` bodies
R002  guarded-by           ``# guarded-by:`` attributes only touched under
                           their lock (or on the event loop)
R003  strict-json          ``json.dumps`` passes ``allow_nan=False``;
                           wire-facing ``json.loads`` lives in decode helpers
R004  typed-errors         no bare ``raise ValueError`` / swallowed
                           ``except Exception: pass`` under platform|loadgen
R005  resource-safety      acquired handles are closed (``with``/``finally``/
                           instance-owned)
R006  frame-versioning     magic/version constants come with decode-time
                           rejection
====  ===================  ====================================================

R000 is reserved for analyzer-level problems (syntax errors, malformed
pragmas) and is emitted by the engine, not listed here.
"""

from __future__ import annotations

import ast
import re
from typing import Callable

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding

__all__ = ["RULES", "RULE_DOCS"]

#: rule code -> one-line description (rendered by ``repro lint --rules``)
RULE_DOCS: dict[str, str] = {
    "R000": "analyzer integrity: files must parse and lintor pragmas must be well-formed",
    "R001": "event-loop-blocking: no blocking calls inside async def bodies",
    "R002": "guarded-by: annotated attributes only accessed under their declared lock",
    "R003": "strict-json: json.dumps needs allow_nan=False; wire json.loads needs a decode helper",
    "R004": "typed-errors: no bare raise ValueError / except Exception: pass in platform|loadgen",
    "R005": "resource-safety: open/connect/socket results closed via with, finally, or instance ownership",
    "R006": "frame-versioning: magic/version constants require decode-time rejection",
}


def _finding(ctx: ModuleContext, node: ast.AST, rule: str, message: str, fixit: str) -> Finding:
    return Finding(
        path=ctx.relpath,
        line=getattr(node, "lineno", 0),
        col=getattr(node, "col_offset", 0),
        rule=rule,
        message=message,
        fixit=fixit,
    )


# ---------------------------------------------------------------------------
# R001 — event-loop-blocking


#: canonical dotted name -> why it blocks / what to do instead
_BLOCKING_CALLS: dict[str, str] = {
    "time.sleep": "use `await asyncio.sleep(...)` instead",
    "sqlite3.connect": "open connections on the worker pool, never on the loop",
    "socket.socket": "use asyncio transports or run it on the worker pool",
    "socket.create_connection": "use asyncio.open_connection or the worker pool",
    "socket.getaddrinfo": "use `await loop.getaddrinfo(...)`",
    "zlib.compress": "compression over unbounded buffers is CPU-bound; offload via run_in_executor",
    "zlib.decompress": "decompression over unbounded buffers is CPU-bound; offload via run_in_executor",
    "subprocess.run": "spawn processes with asyncio.create_subprocess_exec or the worker pool",
    "subprocess.check_output": "spawn processes with asyncio.create_subprocess_exec or the worker pool",
    "subprocess.check_call": "spawn processes with asyncio.create_subprocess_exec or the worker pool",
    "subprocess.call": "spawn processes with asyncio.create_subprocess_exec or the worker pool",
    "open": "file I/O blocks the loop; read/write on the worker pool",
}

#: ``self.<attr>.method(...)`` roots that reach the shard tier: these calls
#: take shard locks and touch storage, so coroutine bodies must offload
#: them via ``run_in_executor`` (the gateway's `_execute` pattern).
_BLOCKING_SELF_ROOTS = {"service", "backend", "client", "storage"}


def check_r001(ctx: ModuleContext) -> list[Finding]:
    findings: list[Finding] = []
    for func in ast.walk(ctx.tree):
        if not isinstance(func, ast.AsyncFunctionDef):
            continue
        for node in _walk_coroutine_body(func):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve_call(node.func)
            if resolved in _BLOCKING_CALLS:
                findings.append(
                    _finding(
                        ctx,
                        node,
                        "R001",
                        f"blocking call {resolved}() inside async def {func.name}",
                        _BLOCKING_CALLS[resolved],
                    )
                )
                continue
            root = _self_call_root(node.func)
            if root in _BLOCKING_SELF_ROOTS:
                findings.append(
                    _finding(
                        ctx,
                        node,
                        "R001",
                        f"self.{root}.{node.func.attr}(...) blocks inside async def "
                        f"{func.name}: shard-tier calls take locks and touch storage",
                        "offload via `await loop.run_in_executor(pool, ...)` like the gateway's _execute",
                    )
                )
    return findings


def _walk_coroutine_body(func: ast.AsyncFunctionDef):
    """Walk a coroutine body, skipping nested *sync* defs (those run
    wherever they are called — typically on the worker pool) but
    descending into nested coroutines and lambdas."""
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, ast.FunctionDef):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _self_call_root(func: ast.expr) -> str | None:
    """Return ``root`` for calls shaped ``self.<root>.<method>(...)``."""
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Attribute)
        and isinstance(func.value.value, ast.Name)
        and func.value.value.id == "self"
    ):
        return func.value.attr
    return None


# ---------------------------------------------------------------------------
# R002 — guarded-by


_LOOP_GUARD = "event-loop"


def check_r002(ctx: ModuleContext) -> list[Finding]:
    guards = _collect_guarded_attributes(ctx)
    if not guards:
        return []
    findings: list[Finding] = []
    declaration_lines = {line for _, line in guards.values()}
    loop_marked_funcs: set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.lineno in ctx.comments.loop_marked:
                loop_marked_funcs.add(node.name)
    for node in ast.walk(ctx.tree):
        if not (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in guards
        ):
            continue
        if node.lineno in declaration_lines:
            continue
        guard, _ = guards[node.attr]
        func = ctx.enclosing_function(node)
        if func is not None and func.name in ("__init__", "__post_init__"):
            continue
        if guard == _LOOP_GUARD:
            if isinstance(func, ast.AsyncFunctionDef):
                continue
            if func is not None and func.name in loop_marked_funcs:
                continue
            findings.append(
                _finding(
                    ctx,
                    node,
                    "R002",
                    f"self.{node.attr} is guarded-by event-loop but accessed in "
                    f"{'sync function ' + func.name if func else 'module scope'}",
                    "touch it only from coroutines or functions marked `# runs-on: event-loop`",
                )
            )
            continue
        if not _inside_with_lock(ctx, node, guard):
            findings.append(
                _finding(
                    ctx,
                    node,
                    "R002",
                    f"self.{node.attr} is guarded-by {guard} but accessed outside "
                    f"`with self.{guard}:`",
                    f"wrap the access in `with self.{guard}:` (or move it into __init__)",
                )
            )
    findings.extend(_check_loop_marked_never_offloaded(ctx, loop_marked_funcs))
    return findings


def _collect_guarded_attributes(ctx: ModuleContext) -> dict[str, tuple[str, int]]:
    """Map attribute name -> (guard name, declaration line).

    A ``# guarded-by:`` comment attaches to the statement starting on its
    line: ``self.x = ...`` assignments (instance attributes) and bare-name
    ``x: T = ...`` annotations (class-level dataclass fields).
    """
    guards: dict[str, tuple[str, int]] = {}
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        guard = ctx.comments.guards.get(node.lineno)
        if guard is None:
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                guards[target.attr] = (guard, node.lineno)
            elif isinstance(target, ast.Name):
                guards[target.id] = (guard, node.lineno)
    return guards


def _inside_with_lock(ctx: ModuleContext, node: ast.AST, guard: str) -> bool:
    wanted = f"self.{guard}"
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, (ast.With, ast.AsyncWith)):
            for item in ancestor.items:
                if ast.unparse(item.context_expr) == wanted:
                    return True
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False
    return False


def _check_loop_marked_never_offloaded(
    ctx: ModuleContext, loop_marked_funcs: set[str]
) -> list[Finding]:
    """`# runs-on: event-loop` functions must never become thread/executor
    targets — that would move loop-confined state onto another thread."""
    if not loop_marked_funcs:
        return []
    findings: list[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        offloaded: list[ast.expr] = []
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "run_in_executor",
            "submit",
        ):
            offloaded.extend(node.args)
        resolved = ctx.resolve_call(node.func)
        if resolved == "threading.Thread" or (
            isinstance(node.func, ast.Name) and node.func.id == "Thread"
        ):
            offloaded.extend(
                kw.value for kw in node.keywords if kw.arg == "target"
            )
        for arg in offloaded:
            name = None
            if isinstance(arg, ast.Attribute) and isinstance(arg.value, ast.Name):
                name = arg.attr
            elif isinstance(arg, ast.Name):
                name = arg.id
            if name in loop_marked_funcs:
                findings.append(
                    _finding(
                        ctx,
                        node,
                        "R002",
                        f"{name} runs-on the event loop but is handed to a thread/executor",
                        "loop-confined functions must stay on the loop; copy the data instead",
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# R003 — strict-json


#: wire-facing modules: raw ``json.loads`` here must live inside a decode
#: helper whose name signals validation (``decode*``/``_decode*``/``loads``)
_WIRE_FACING_SUFFIXES = (
    "platform/server.py",
    "platform/client.py",
    "platform/wire.py",
    "loadgen/trace.py",
)

_DECODE_NAME_RE = re.compile(r"^_?(decode|loads$|from_json)")


def check_r003(ctx: ModuleContext) -> list[Finding]:
    findings: list[Finding] = []
    wire_facing = ctx.relpath.replace("\\", "/").endswith(_WIRE_FACING_SUFFIXES)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolve_call(node.func)
        if resolved == "json.dumps":
            if not _passes_allow_nan_false(node):
                findings.append(
                    _finding(
                        ctx,
                        node,
                        "R003",
                        "json.dumps without allow_nan=False can emit NaN/Infinity, "
                        "which is not JSON",
                        "pass allow_nan=False so non-finite floats fail loudly at encode time",
                    )
                )
        elif resolved == "json.loads" and wire_facing:
            func = ctx.enclosing_function(node)
            if func is None or not _DECODE_NAME_RE.match(func.name):
                where = func.name if func else "module scope"
                findings.append(
                    _finding(
                        ctx,
                        node,
                        "R003",
                        f"wire-facing json.loads outside a decode helper (in {where})",
                        "route raw wire bytes through a decode*/loads helper that validates the payload",
                    )
                )
    return findings


def _passes_allow_nan_false(call: ast.Call) -> bool:
    for keyword in call.keywords:
        if keyword.arg == "allow_nan":
            value = keyword.value
            return isinstance(value, ast.Constant) and value.value is False
    return False


# ---------------------------------------------------------------------------
# R004 — typed-errors


_TYPED_ERROR_SCOPES = ("platform/", "loadgen/")
_BARE_RAISES = {"ValueError", "Exception"}
_SWALLOWED_TYPES = {"Exception", "BaseException"}


def _in_scope(ctx: ModuleContext, scopes: tuple[str, ...]) -> bool:
    path = ctx.relpath.replace("\\", "/")
    return any(f"/{scope}" in f"/{path}" for scope in scopes)


def check_r004(ctx: ModuleContext) -> list[Finding]:
    if not _in_scope(ctx, _TYPED_ERROR_SCOPES):
        return []
    findings: list[Finding] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Raise):
            name = _raised_name(node)
            if name in _BARE_RAISES:
                findings.append(
                    _finding(
                        ctx,
                        node,
                        "R004",
                        f"bare `raise {name}` in platform/loadgen code",
                        "raise ValidationError (or a subclass like CodecError) so callers "
                        "can catch by contract",
                    )
                )
        elif isinstance(node, ast.ExceptHandler):
            if not all(isinstance(stmt, ast.Pass) for stmt in node.body):
                continue
            if node.type is None:
                caught = "everything"
            elif isinstance(node.type, ast.Name) and node.type.id in _SWALLOWED_TYPES:
                caught = node.type.id
            else:
                continue
            findings.append(
                _finding(
                    ctx,
                    node,
                    "R004",
                    f"except clause catches {caught} and silently passes",
                    "catch the narrowest typed error and handle it, or let it propagate",
                )
            )
    return findings


def _raised_name(node: ast.Raise) -> str | None:
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    return None


# ---------------------------------------------------------------------------
# R005 — resource-safety


_ACQUIRE_CALLS = {
    "open",
    "sqlite3.connect",
    "socket.socket",
    "socket.create_connection",
    "http.client.HTTPConnection",
    "subprocess.Popen",
}


def check_r005(ctx: ModuleContext) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolve_call(node.func)
        if resolved not in _ACQUIRE_CALLS:
            continue
        if _resource_is_managed(ctx, node):
            continue
        findings.append(
            _finding(
                ctx,
                node,
                "R005",
                f"{resolved}() result is never closed",
                "use `with ...:`, close it in a finally, or store it on self and "
                "close it in the owner's close()",
            )
        )
    return findings


def _resource_is_managed(ctx: ModuleContext, call: ast.Call) -> bool:
    parent = ctx.parent(call)
    # `with acquire(...) as x:` — directly, or via contextlib.closing(...)
    if isinstance(parent, ast.withitem):
        return True
    if isinstance(parent, ast.Call):
        wrapped = ctx.resolve_call(parent.func)
        if wrapped in ("contextlib.closing", "closing"):
            return True
    # `return acquire(...)` — ownership transfers to the caller.
    if isinstance(parent, ast.Return):
        return True
    if isinstance(parent, ast.Assign):
        for target in parent.targets:
            # `self.x = acquire(...)` — instance-owned; the owner's close()
            # is responsible (and R002/R005 fire there if it leaks).
            if isinstance(target, ast.Attribute):
                return True
            if isinstance(target, ast.Name):
                if _closed_in_function(ctx, call, target.id):
                    return True
    return False


def _closed_in_function(ctx: ModuleContext, call: ast.Call, name: str) -> bool:
    """True when the enclosing function calls ``name.close()`` or uses
    ``name`` as a with-item somewhere after acquisition."""
    func = ctx.enclosing_function(call)
    scope: ast.AST = func if func is not None else ctx.tree
    for node in ast.walk(scope):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "close"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == name
        ):
            return True
        if isinstance(node, ast.withitem):
            expr = node.context_expr
            if isinstance(expr, ast.Name) and expr.id == name:
                return True
    return False


# ---------------------------------------------------------------------------
# R006 — frame-versioning


_VERSION_CONST_RE = re.compile(r"^_?([A-Z][A-Z0-9_]*_)?(MAGIC|VERSION)$")


def check_r006(ctx: ModuleContext) -> list[Finding]:
    constants: list[tuple[str, ast.stmt]] = []
    for scope in _module_and_class_bodies(ctx.tree):
        for stmt in scope:
            name = _constant_name(stmt)
            if name and _VERSION_CONST_RE.match(name):
                constants.append((name, stmt))
    if not constants:
        return []
    findings: list[Finding] = []
    for name, stmt in constants:
        if not _has_rejection(ctx.tree, name):
            findings.append(
                _finding(
                    ctx,
                    stmt,
                    "R006",
                    f"{name} declares a wire/trace format constant but the module "
                    "never rejects a mismatch at decode time",
                    f"add `if ... != {name}: raise CodecError(...)` (or ValidationError) "
                    "on the read path — see wire_format.md's version-bump rule",
                )
            )
    return findings


def _module_and_class_bodies(tree: ast.Module):
    yield tree.body
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield node.body


def _constant_name(stmt: ast.stmt) -> str | None:
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target = stmt.targets[0]
        if isinstance(target, ast.Name) and isinstance(stmt.value, ast.Constant):
            return target.id
    if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
        if isinstance(stmt.value, ast.Constant):
            return stmt.target.id
    return None


def _has_rejection(tree: ast.Module, name: str) -> bool:
    """A rejection is an ``if`` whose test references ``name`` (bare or as
    ``self.NAME``/``cls.NAME``) and whose body raises."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        if not _references_name(node.test, name):
            continue
        if any(isinstance(inner, ast.Raise) for stmt in node.body for inner in ast.walk(stmt)):
            return True
    return False


def _references_name(expr: ast.expr, name: str) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and node.id == name:
            return True
        if isinstance(node, ast.Attribute) and node.attr == name:
            return True
    return False


#: the rule registry, in report order
RULES: dict[str, Callable[[ModuleContext], list[Finding]]] = {
    "R001": check_r001,
    "R002": check_r002,
    "R003": check_r003,
    "R004": check_r004,
    "R005": check_r005,
    "R006": check_r006,
}
