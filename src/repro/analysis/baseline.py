"""Shrink-only baseline for lintor findings.

The baseline (``tools/lintor_baseline.json``) is the set of findings the
repo has accepted *for now*.  Comparing a fresh run against it yields two
failure modes, both of which gate CI:

* **new** — a finding not in the baseline: a freshly introduced
  violation.  Fix it (or pragma it with a reason); never baseline it.
* **stale** — a baseline entry no fresh finding matches: the debt was
  paid but the ledger not updated.  Rewrite the baseline (it shrinks).

``write_baseline`` enforces the shrink-only policy mechanically: writing
a baseline that contains findings absent from the existing committed one
is refused.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding
from repro.utils.validation import ValidationError

__all__ = ["BaselineDelta", "compare_to_baseline", "load_baseline", "write_baseline"]

BASELINE_VERSION = 1


def load_baseline(path: Path) -> list[Finding]:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        raise ValidationError(f"cannot read baseline {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise ValidationError(f"baseline {path} is not valid JSON: {error}") from error
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise ValidationError(
            f"baseline {path} must be an object with version={BASELINE_VERSION}"
        )
    entries = payload.get("findings")
    if not isinstance(entries, list):
        raise ValidationError(f"baseline {path} must carry a findings list")
    return sorted(Finding.from_dict(entry) for entry in entries)


@dataclass(frozen=True)
class BaselineDelta:
    """The two-sided diff between a fresh run and the committed baseline."""

    new: list[Finding] = field(default_factory=list)
    stale: list[Finding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.new and not self.stale


def compare_to_baseline(findings: list[Finding], baseline: list[Finding]) -> BaselineDelta:
    fresh_keys = {f.key() for f in findings}
    known_keys = {f.key() for f in baseline}
    return BaselineDelta(
        new=sorted(f for f in findings if f.key() not in known_keys),
        stale=sorted(f for f in baseline if f.key() not in fresh_keys),
    )


def write_baseline(path: Path, findings: list[Finding]) -> None:
    """Serialize ``findings`` as the new baseline — refusing to grow it.

    If ``path`` already exists, every finding written must already be in
    it: the baseline is a ratchet, not a dumping ground.  New violations
    are fixed or pragma'd at the source line, never baselined.
    """
    if path.exists():
        known = {f.key() for f in load_baseline(path)}
        growth = sorted(f for f in findings if f.key() not in known)
        if growth:
            listing = "\n".join(f"  {f.render()}" for f in growth)
            raise ValidationError(
                "refusing to grow the baseline — fix or pragma these instead:\n"
                + listing
            )
    payload = {
        "version": BASELINE_VERSION,
        "findings": [f.to_dict() for f in sorted(findings)],
    }
    path.write_text(json.dumps(payload, indent=2, allow_nan=False) + "\n", encoding="utf-8")
