"""Shared utilities for the LIGHTOR reproduction.

The utilities here are intentionally small and dependency-free (numpy only):
deterministic random-number management, curve smoothing, histogram helpers,
input validation, and lightweight structured logging.
"""

from repro.utils.rng import SeedSequenceFactory, derive_rng, stable_hash
from repro.utils.smoothing import gaussian_smooth, moving_average
from repro.utils.histograms import Histogram, cumulative_distribution
from repro.utils.validation import (
    ValidationError,
    require,
    require_non_negative,
    require_positive,
    require_probability,
    require_range,
)
from repro.utils.logging import get_logger

__all__ = [
    "SeedSequenceFactory",
    "derive_rng",
    "stable_hash",
    "gaussian_smooth",
    "moving_average",
    "Histogram",
    "cumulative_distribution",
    "ValidationError",
    "require",
    "require_non_negative",
    "require_positive",
    "require_probability",
    "require_range",
    "get_logger",
]
