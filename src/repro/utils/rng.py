"""Deterministic random-number management.

Every stochastic component of the reproduction (chat simulator, viewer
behaviour model, dataset generator, ML initialisation) draws its randomness
from a :class:`numpy.random.Generator` derived from a named seed.  Deriving
generators by *name* rather than sharing a single global generator keeps the
experiments reproducible even when modules are re-ordered or run in isolation:
generating the chat for video 7 always uses the same stream regardless of how
many other videos were generated before it.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

__all__ = ["stable_hash", "derive_rng", "SeedSequenceFactory"]

# Number of bits of the digest kept when turning a string into an integer
# seed.  64 bits is plenty of entropy for seeding and keeps seeds readable.
_HASH_BITS = 64


def stable_hash(*parts: object) -> int:
    """Return a platform-stable integer hash of ``parts``.

    Python's built-in :func:`hash` is randomised per process for strings, so
    it cannot be used to derive reproducible seeds.  This helper hashes the
    ``repr`` of each part with SHA-256 and folds the digest down to
    ``_HASH_BITS`` bits.

    >>> stable_hash("dota2", 7) == stable_hash("dota2", 7)
    True
    >>> stable_hash("dota2", 7) != stable_hash("lol", 7)
    True
    """
    digest = hashlib.sha256()
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x1f")  # separator so ("ab","c") != ("a","bc")
    return int.from_bytes(digest.digest()[: _HASH_BITS // 8], "big")


def derive_rng(base_seed: int, *names: object) -> np.random.Generator:
    """Derive an independent generator from ``base_seed`` and a name path.

    Parameters
    ----------
    base_seed:
        The experiment-level seed (e.g. the dataset seed).
    names:
        Any hashable path describing the consumer, e.g.
        ``("chat", video_id)`` or ``("viewer", dot_index, round_index)``.
    """
    return np.random.default_rng(stable_hash(base_seed, *names))


class SeedSequenceFactory:
    """Factory that hands out named, independent random generators.

    The factory is the single entry point for randomness inside a simulation
    run.  Components ask for a generator by name::

        seeds = SeedSequenceFactory(base_seed=42)
        chat_rng = seeds.rng("chat", video.video_id)
        viewer_rng = seeds.rng("viewer", worker_id)

    Two factories built with the same ``base_seed`` produce identical streams
    for identical names, and different names never share a stream.
    """

    def __init__(self, base_seed: int) -> None:
        require_int(base_seed, "base_seed")
        self._base_seed = int(base_seed)

    @property
    def base_seed(self) -> int:
        """The experiment-level seed this factory derives from."""
        return self._base_seed

    def rng(self, *names: object) -> np.random.Generator:
        """Return a generator for the stream identified by ``names``."""
        return derive_rng(self._base_seed, *names)

    def seed(self, *names: object) -> int:
        """Return the integer seed for the stream identified by ``names``."""
        return stable_hash(self._base_seed, *names)

    def spawn(self, *names: object) -> "SeedSequenceFactory":
        """Return a child factory rooted at ``names``.

        Useful when a sub-system (e.g. the crowd simulator) wants to manage
        its own namespace of streams without risking collisions with the
        parent's streams.
        """
        return SeedSequenceFactory(self.seed(*names))

    def permutation(self, n: int, *names: object) -> np.ndarray:
        """Return a reproducible permutation of ``range(n)``."""
        return self.rng(*names).permutation(n)

    def choice(self, items: Iterable[object], *names: object) -> object:
        """Return a reproducible choice from ``items``."""
        pool = list(items)
        if not pool:
            raise ValueError("cannot choose from an empty collection")
        index = int(self.rng(*names).integers(0, len(pool)))
        return pool[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeedSequenceFactory(base_seed={self._base_seed})"


def require_int(value: object, name: str) -> None:
    """Raise :class:`TypeError` unless ``value`` is an integer."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
