"""Histogram and distribution helpers used throughout the evaluation.

The Highlight Initializer analyses per-second chat counts (Fig. 2a), the
SocialSkip / MOOCer baselines accumulate per-second interaction histograms,
and the applicability study (Fig. 9) reports cumulative distributions of
chat rate and viewer counts.  This module keeps those primitives in one
place so they are tested once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.utils.validation import ValidationError, require_positive

__all__ = ["Histogram", "cumulative_distribution", "empirical_cdf_at"]


@dataclass
class Histogram:
    """A per-bin counter over a fixed time range ``[0, duration)``.

    Parameters
    ----------
    duration:
        Total length of the axis in seconds.
    bin_size:
        Width of each bin in seconds (default one second, as in the paper's
        interaction histograms).
    """

    duration: float
    bin_size: float = 1.0
    counts: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        require_positive(self.duration, "duration")
        require_positive(self.bin_size, "bin_size")
        n_bins = int(np.ceil(self.duration / self.bin_size))
        self.counts = np.zeros(n_bins, dtype=float)

    @property
    def n_bins(self) -> int:
        """Number of bins in the histogram."""
        return int(self.counts.size)

    def bin_index(self, timestamp: float) -> int:
        """Return the bin index containing ``timestamp``.

        Raises :class:`ValidationError` when the timestamp falls outside the
        histogram range.
        """
        if timestamp < 0 or timestamp >= self.duration:
            raise ValidationError(
                f"timestamp {timestamp!r} outside histogram range [0, {self.duration})"
            )
        return min(self.n_bins - 1, int(timestamp // self.bin_size))

    def add_point(self, timestamp: float, weight: float = 1.0) -> None:
        """Add ``weight`` to the bin containing ``timestamp``."""
        self.counts[self.bin_index(timestamp)] += weight

    def add_range(self, start: float, end: float, weight: float = 1.0) -> None:
        """Add ``weight`` to every bin overlapping ``[start, end)``.

        Timestamps are clipped to the histogram range, so plays that slightly
        overrun the video end do not raise.
        """
        if end <= start:
            return
        start = max(0.0, start)
        end = min(float(self.duration), end)
        if end <= start:
            return
        first = int(start // self.bin_size)
        last = min(self.n_bins - 1, int(np.ceil(end / self.bin_size)) - 1)
        self.counts[first : last + 1] += weight

    def bin_centers(self) -> np.ndarray:
        """Return the centre timestamp of each bin."""
        return (np.arange(self.n_bins) + 0.5) * self.bin_size

    def argmax_time(self) -> float:
        """Return the centre timestamp of the highest bin."""
        return float(self.bin_centers()[int(np.argmax(self.counts))])

    def to_array(self) -> np.ndarray:
        """Return a copy of the raw bin counts."""
        return self.counts.copy()


def cumulative_distribution(values: Iterable[float]) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(sorted_values, cumulative_percentage)`` for plotting a CDF.

    Percentages are in ``[0, 100]`` as in Fig. 9 of the paper.  An empty
    input yields two empty arrays.
    """
    data = np.sort(np.asarray(list(values), dtype=float))
    if data.size == 0:
        return data, data.copy()
    percentages = 100.0 * np.arange(1, data.size + 1) / data.size
    return data, percentages


def empirical_cdf_at(values: Sequence[float], threshold: float) -> float:
    """Return the fraction of ``values`` that are <= ``threshold``.

    Used by the applicability analysis (e.g. "what fraction of videos have
    fewer than 500 chat messages per hour?").  Returns 0.0 for empty input.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return 0.0
    return float(np.mean(data <= threshold))
