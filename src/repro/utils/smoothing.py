"""Curve smoothing utilities.

The paper smooths per-second chat-message histograms before finding peaks
(Fig. 2a) and the SocialSkip / MOOCer baselines smooth interaction histograms
before extracting local maxima.  Both use simple low-pass smoothing; we
provide a moving average and a Gaussian kernel smoother.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import require_positive

__all__ = ["moving_average", "gaussian_smooth", "find_local_maxima"]


def moving_average(values: np.ndarray, window: int) -> np.ndarray:
    """Smooth ``values`` with a centred moving average of size ``window``.

    Edges are handled by shrinking the window (the average is taken over the
    available samples only), so the output has the same length as the input
    and no edge bias towards zero.
    """
    require_positive(window, "window")
    values = np.asarray(values, dtype=float)
    if values.ndim != 1:
        raise ValueError("moving_average expects a 1-D array")
    if values.size == 0:
        return values.copy()
    window = int(window)
    kernel = np.ones(window)
    summed = np.convolve(values, kernel, mode="same")
    counts = np.convolve(np.ones_like(values), kernel, mode="same")
    return summed / counts


def gaussian_smooth(values: np.ndarray, sigma: float) -> np.ndarray:
    """Smooth ``values`` with a Gaussian kernel of standard deviation ``sigma``.

    The kernel is truncated at ``4 * sigma`` and renormalised at the edges so
    that a constant input maps to the same constant output.
    """
    require_positive(sigma, "sigma")
    values = np.asarray(values, dtype=float)
    if values.ndim != 1:
        raise ValueError("gaussian_smooth expects a 1-D array")
    if values.size == 0:
        return values.copy()
    radius = max(1, int(np.ceil(4.0 * sigma)))
    offsets = np.arange(-radius, radius + 1, dtype=float)
    kernel = np.exp(-0.5 * (offsets / sigma) ** 2)
    kernel /= kernel.sum()
    summed = np.convolve(values, kernel, mode="same")
    weight = np.convolve(np.ones_like(values), kernel, mode="same")
    return summed / weight


def find_local_maxima(values: np.ndarray, min_height: float = 0.0) -> list[int]:
    """Return indices of strict local maxima of ``values``.

    A point is a local maximum when it is at least as large as both
    neighbours and strictly larger than one of them; plateaus report their
    first index.  Points below ``min_height`` are ignored.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 1:
        raise ValueError("find_local_maxima expects a 1-D array")
    maxima: list[int] = []
    n = values.size
    for i in range(n):
        left = values[i - 1] if i > 0 else -np.inf
        right = values[i + 1] if i < n - 1 else -np.inf
        if values[i] < min_height:
            continue
        if values[i] >= left and values[i] >= right and (values[i] > left or values[i] > right):
            # Skip plateau continuations: only keep the first point.
            if maxima and i == maxima[-1] + 1 and values[i] == values[maxima[-1]]:
                continue
            maxima.append(i)
    if not maxima and n > 0 and np.all(values == values[0]) and values[0] >= min_height:
        maxima.append(0)
    return maxima
