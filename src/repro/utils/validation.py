"""Input validation helpers.

The public API raises :class:`ValidationError` (a subclass of ``ValueError``)
with actionable messages instead of letting malformed configuration propagate
into numpy errors deep inside the pipeline.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = [
    "ValidationError",
    "require",
    "require_positive",
    "require_non_negative",
    "require_probability",
    "require_range",
    "require_sorted",
    "require_non_empty",
]


class ValidationError(ValueError):
    """Raised when a user-supplied value fails validation."""


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValidationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ValidationError(message)


def require_positive(value: float, name: str) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValidationError(f"{name} must be positive, got {value!r}")


def require_non_negative(value: float, name: str) -> None:
    """Require ``value >= 0``."""
    if value < 0:
        raise ValidationError(f"{name} must be non-negative, got {value!r}")


def require_probability(value: float, name: str) -> None:
    """Require ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must be in [0, 1], got {value!r}")


def require_range(value: float, low: float, high: float, name: str) -> None:
    """Require ``low <= value <= high``."""
    if not low <= value <= high:
        raise ValidationError(f"{name} must be in [{low}, {high}], got {value!r}")


def require_sorted(values: Sequence[float], name: str) -> None:
    """Require ``values`` to be non-decreasing."""
    for previous, current in zip(values, values[1:]):
        if current < previous:
            raise ValidationError(f"{name} must be sorted in non-decreasing order")


def require_non_empty(values: Iterable[object], name: str) -> None:
    """Require ``values`` to contain at least one element."""
    if hasattr(values, "__len__"):
        is_empty = len(values) == 0  # type: ignore[arg-type]
    else:
        is_empty = not list(values)
    if is_empty:
        raise ValidationError(f"{name} must not be empty")
