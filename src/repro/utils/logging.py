"""Lightweight logging configuration.

The library logs through the standard :mod:`logging` module under the
``repro`` namespace.  By default nothing is emitted (a ``NullHandler`` is
attached); applications and the CLI opt in by calling
:func:`configure_logging`.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger", "configure_logging"]

_ROOT_NAME = "repro"

logging.getLogger(_ROOT_NAME).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """Return a logger below the ``repro`` namespace.

    ``get_logger("simulation.chat")`` returns ``repro.simulation.chat``.
    Passing a name that already starts with ``repro`` returns it unchanged.
    """
    if name == _ROOT_NAME or name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def configure_logging(level: int = logging.INFO) -> None:
    """Attach a stream handler with a terse format to the ``repro`` logger.

    Calling this more than once does not duplicate handlers.
    """
    root = logging.getLogger(_ROOT_NAME)
    root.setLevel(level)
    has_stream = any(
        isinstance(handler, logging.StreamHandler)
        and not isinstance(handler, logging.NullHandler)
        for handler in root.handlers
    )
    if not has_stream:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
        root.addHandler(handler)
