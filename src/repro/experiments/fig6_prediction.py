"""EXP-F6 — Figure 6: evaluation of the Initializer's prediction stage.

Panel (a): Chat Precision@K of three logistic-regression models using
msg_num, msg_num + msg_len, and all three general features, trained on a
small set of videos and tested on held-out videos.  Expected shape: all three
are strong for small k; the richer feature sets dominate as k grows.

Panel (b): Chat Precision@10 as the number of training videos varies from 1
to 10.  Expected shape: precision is essentially flat — one labelled video is
already enough because the model has only three highly general features.
"""

from __future__ import annotations

from repro.core.initializer.predictor import FeatureSet
from repro.eval.reports import format_caption, format_series
from repro.eval.runner import EvaluationRunner
from repro.datasets.loaders import train_test_split
from repro.experiments.common import default_config, dota2_videos, resolve_scale

__all__ = ["run", "report"]

_FEATURE_SETS = {
    "msg_num": FeatureSet.MSG_NUM,
    "msg_num+len": FeatureSet.MSG_NUM_LEN,
    "msg_num+len+sim": FeatureSet.ALL,
}


def run(scale: str = "small") -> dict:
    """Run both panels of Figure 6 on the Dota2 suite."""
    settings = resolve_scale(scale)
    config = default_config()
    dataset = dota2_videos(settings)
    max_train = min(10, settings.n_train if settings.n_train > 1 else 10, len(dataset) - 1)
    train_pool, test_pool = train_test_split(dataset, n_train=max_train)
    test_pool = test_pool[: settings.n_test]
    ks = list(settings.k_values)

    # Panel (a): feature ablation at fixed training size.
    ablation: dict[str, dict[int, float]] = {}
    for label, feature_set in _FEATURE_SETS.items():
        runner = EvaluationRunner(config=config, feature_set=feature_set)
        initializer = runner.fit_initializer(train_pool)
        ablation[label] = runner.chat_precision_curve(initializer, test_pool, ks)

    # Panel (b): effect of the number of training videos on P@10.
    k_for_training_curve = max(ks)
    training_sizes = [size for size in (1, 2, 4, 6, 8, 10) if size <= len(train_pool)]
    training_curve: dict[int, float] = {}
    runner = EvaluationRunner(config=config, feature_set=FeatureSet.ALL)
    for size in training_sizes:
        initializer = runner.fit_initializer(train_pool[:size])
        curve = runner.chat_precision_curve(initializer, test_pool, [k_for_training_curve])
        training_curve[size] = curve[k_for_training_curve]

    return {
        "ks": ks,
        "ablation": ablation,
        "training_curve": training_curve,
        "training_curve_k": k_for_training_curve,
        "n_test_videos": len(test_pool),
    }


def report(results: dict) -> str:
    """Render both panels as series tables."""
    lines = [
        format_caption(
            "Figure 6a",
            f"Chat Precision@K by feature set ({results['n_test_videos']} test videos)",
        ),
        format_series("k", results["ablation"]),
        format_caption(
            "Figure 6b",
            f"Chat Precision@{results['training_curve_k']} vs number of training videos",
        ),
        format_series("# training videos", {"lightor": results["training_curve"]}),
    ]
    return "\n".join(lines)
