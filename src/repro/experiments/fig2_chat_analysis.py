"""EXP-F2 — Figure 2: analysis of the chat data of one video.

Figure 2(a) plots the per-second chat-message histogram (with a smoothed
curve) of one Twitch video and marks the delay between a highlight's start
and its chat peak.  Figure 2(b) compares the feature-value distributions of
highlight and non-highlight sliding windows for the three general features.

The experiment reproduces both panels numerically: the measured chat delay
for every highlight of the analysed video, and per-feature summary statistics
(mean/median) split by window label.  The expected shape is a clearly
positive delay (tens of seconds) and separated feature distributions —
highlight windows have more messages, shorter messages and higher similarity.
"""

from __future__ import annotations

import numpy as np

from repro.core.initializer.features import FEATURE_NAMES, WindowFeatureExtractor
from repro.core.initializer.windows import build_sliding_windows
from repro.eval.reports import format_caption, format_table
from repro.experiments.common import default_config, dota2_videos, resolve_scale
from repro.utils.histograms import Histogram
from repro.utils.smoothing import gaussian_smooth

__all__ = ["run", "report"]


def run(scale: str = "small", video_index: int = 1) -> dict:
    """Analyse one Dota2 video's chat (histogram peaks, delays, features)."""
    settings = resolve_scale(scale)
    config = default_config()
    labelled = dota2_videos(settings)[video_index]
    chat_log = labelled.chat_log
    video = labelled.video

    # Panel (a): per-second histogram, smoothed curve, delay per highlight.
    histogram = Histogram(duration=video.duration, bin_size=1.0)
    for message in chat_log.messages:
        histogram.add_point(min(message.timestamp, video.duration - 1e-6))
    smoothed = gaussian_smooth(histogram.to_array(), sigma=5.0)

    delays = []
    for highlight in video.highlights:
        start_bin = int(highlight.start)
        end_bin = min(smoothed.size, int(highlight.end) + 60)
        if end_bin <= start_bin:
            continue
        peak_bin = start_bin + int(np.argmax(smoothed[start_bin:end_bin]))
        delays.append(peak_bin - highlight.start)

    # Panel (b): feature distributions of highlight vs non-highlight windows.
    windows = build_sliding_windows(chat_log, window_size=config.window_size)
    extractor = WindowFeatureExtractor()
    raw = extractor.feature_matrix(windows, normalise=False)
    labels = extractor.label_windows(windows, labelled.highlights)

    feature_stats = {}
    for column, name in enumerate(FEATURE_NAMES):
        positives = raw[labels == 1, column]
        negatives = raw[labels == 0, column]
        feature_stats[name] = {
            "highlight_mean": float(np.mean(positives)) if positives.size else 0.0,
            "highlight_median": float(np.median(positives)) if positives.size else 0.0,
            "non_highlight_mean": float(np.mean(negatives)) if negatives.size else 0.0,
            "non_highlight_median": float(np.median(negatives)) if negatives.size else 0.0,
        }

    return {
        "video_id": video.video_id,
        "n_messages": len(chat_log),
        "n_windows": len(windows),
        "n_highlight_windows": int(labels.sum()),
        "global_peak_second": histogram.argmax_time(),
        "mean_chat_delay": float(np.mean(delays)) if delays else 0.0,
        "median_chat_delay": float(np.median(delays)) if delays else 0.0,
        "feature_stats": feature_stats,
    }


def report(results: dict) -> str:
    """Render the Figure-2 analysis as text tables."""
    lines = [
        format_caption(
            "Figure 2",
            f"chat analysis of video {results['video_id']} "
            f"({results['n_messages']} messages, {results['n_windows']} windows, "
            f"{results['n_highlight_windows']} highlight windows)",
        ),
        f"global chat peak at {results['global_peak_second']:.0f}s; "
        f"mean delay highlight start -> chat peak = {results['mean_chat_delay']:.1f}s "
        f"(median {results['median_chat_delay']:.1f}s)",
    ]
    rows = []
    for name, stats in results["feature_stats"].items():
        rows.append(
            [
                name,
                stats["highlight_mean"],
                stats["highlight_median"],
                stats["non_highlight_mean"],
                stats["non_highlight_median"],
            ]
        )
    lines.append(
        format_table(
            ["feature", "hl mean", "hl median", "non-hl mean", "non-hl median"], rows
        )
    )
    return "\n".join(lines)
