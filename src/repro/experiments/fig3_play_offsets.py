"""EXP-F3 — Figure 3: play start-offset distributions for Type I / Type II dots.

The paper plots, separately for Type I (red dot after the highlight end) and
Type II (red dot before the end), the distribution of each play's start
position minus the ground-truth highlight start.  Type I is approximately
uniform over tens of seconds (viewers hunting for the highlight); Type II is
approximately normal with a small positive median (viewers skip the first
uneventful seconds).

The experiment generates crowd rounds against deliberately Type-I and Type-II
dot placements over several videos and summarises both offset distributions
(median, inter-quartile range, standard deviation) plus a coarse histogram.
The shape check: Type II has a much smaller spread and a median of a few
seconds; Type I is wide and roughly flat.
"""

from __future__ import annotations

import numpy as np

from repro.core.extractor.plays import interactions_to_plays, plays_near_dot
from repro.core.types import RedDot
from repro.eval.reports import format_caption, format_table
from repro.experiments.common import default_config, dota2_videos, resolve_scale
from repro.simulation.viewers import ViewerBehaviorModel
from repro.utils.rng import SeedSequenceFactory

__all__ = ["run", "report"]

_HISTOGRAM_BINS = (-60, -40, -20, 0, 20, 40, 60)


def _offset_summary(offsets: np.ndarray) -> dict:
    if offsets.size == 0:
        return {"count": 0, "median": 0.0, "iqr": 0.0, "std": 0.0, "histogram": {}}
    histogram = {}
    for low, high in zip(_HISTOGRAM_BINS, _HISTOGRAM_BINS[1:]):
        histogram[f"[{low},{high})"] = int(np.sum((offsets >= low) & (offsets < high)))
    return {
        "count": int(offsets.size),
        "median": float(np.median(offsets)),
        "iqr": float(np.percentile(offsets, 75) - np.percentile(offsets, 25)),
        "std": float(np.std(offsets)),
        "histogram": histogram,
    }


def run(scale: str = "small", viewers_per_dot: int = 30, seed: int = 11) -> dict:
    """Collect play start offsets for engineered Type I and Type II dots."""
    settings = resolve_scale(scale)
    config = default_config()
    videos = dota2_videos(settings)[: settings.crowd_videos]
    behavior = ViewerBehaviorModel(seeds=SeedSequenceFactory(seed))

    type_i_offsets: list[float] = []
    type_ii_offsets: list[float] = []
    for labelled in videos:
        video = labelled.video
        for highlight in video.highlights[:5]:
            for dot_kind, offsets in (("type_i", type_i_offsets), ("type_ii", type_ii_offsets)):
                if dot_kind == "type_i":
                    # Dot placed after the highlight end (missed highlight).
                    position = min(video.duration - 1.0, highlight.end + 15.0)
                else:
                    # Dot placed a little before the highlight start.
                    position = max(0.0, highlight.start - 5.0)
                dot = RedDot(position=position, video_id=video.video_id)
                interactions = behavior.simulate_round(
                    video, dot, n_viewers=viewers_per_dot, round_index=0
                )
                plays = plays_near_dot(
                    interactions_to_plays(interactions, video_duration=video.duration),
                    dot,
                    radius=config.play_radius,
                )
                offsets.extend(play.start - highlight.start for play in plays)

    return {
        "type_i": _offset_summary(np.asarray(type_i_offsets)),
        "type_ii": _offset_summary(np.asarray(type_ii_offsets)),
        "n_videos": len(videos),
        "viewers_per_dot": viewers_per_dot,
    }


def report(results: dict) -> str:
    """Render both offset distributions side by side."""
    lines = [
        format_caption(
            "Figure 3",
            "play start-offset distributions around Type I vs Type II red dots "
            f"({results['n_videos']} videos, {results['viewers_per_dot']} viewers/dot)",
        )
    ]
    rows = []
    for label in ("type_i", "type_ii"):
        summary = results[label]
        rows.append(
            [label, summary["count"], summary["median"], summary["iqr"], summary["std"]]
        )
    lines.append(format_table(["dot type", "plays", "median offset", "IQR", "std"], rows))
    histogram_rows = []
    bins = list(results["type_i"]["histogram"].keys())
    for bin_name in bins:
        histogram_rows.append(
            [
                bin_name,
                results["type_i"]["histogram"].get(bin_name, 0),
                results["type_ii"]["histogram"].get(bin_name, 0),
            ]
        )
    lines.append(format_table(["offset bin (s)", "type I plays", "type II plays"], histogram_rows))
    return "\n".join(lines)
