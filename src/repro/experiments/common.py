"""Shared plumbing for the experiment modules.

Each experiment needs the same ingredients: a scale (how many videos), the
cached datasets, a fitted Initializer and the default configuration.  This
module centralises those so the per-figure modules contain only the logic
specific to their artifact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import LightorConfig
from repro.datasets.generate import DatasetSpec, LabeledVideo, PAPER_DOTA2_SIZE, PAPER_LOL_SIZE
from repro.datasets.loaders import shared_cache
from repro.utils.validation import ValidationError

__all__ = ["ScaleSettings", "resolve_scale", "dota2_videos", "lol_videos", "default_config"]


@dataclass(frozen=True)
class ScaleSettings:
    """How much data an experiment run uses.

    ``n_train`` / ``n_test`` bound the training and test pools; ``k_values``
    are the x axis of the Precision@K curves; ``crowd_videos`` bounds the
    (more expensive) crowd-in-the-loop experiments; ``lstm_many`` is the
    "large training set" size for the deep baseline comparisons (123 videos
    at paper scale).
    """

    name: str
    n_train: int
    n_test: int
    k_values: tuple[int, ...]
    crowd_videos: int
    lstm_many: int
    dataset_size: int


_SCALES = {
    "small": ScaleSettings(
        name="small",
        n_train=1,
        n_test=10,
        k_values=(1, 3, 5, 10),
        crowd_videos=4,
        lstm_many=6,
        dataset_size=16,
    ),
    "medium": ScaleSettings(
        name="medium",
        n_train=10,
        n_test=30,
        k_values=(1, 3, 5, 8, 10),
        crowd_videos=7,
        lstm_many=20,
        dataset_size=45,
    ),
    "paper": ScaleSettings(
        name="paper",
        n_train=10,
        n_test=50,
        k_values=(1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
        crowd_videos=7,
        lstm_many=123,
        dataset_size=max(PAPER_DOTA2_SIZE, PAPER_LOL_SIZE),
    ),
}


def resolve_scale(scale: str | ScaleSettings) -> ScaleSettings:
    """Return the :class:`ScaleSettings` for a scale name (or pass-through)."""
    if isinstance(scale, ScaleSettings):
        return scale
    try:
        return _SCALES[scale]
    except KeyError as error:
        known = ", ".join(sorted(_SCALES))
        raise ValidationError(f"unknown scale {scale!r}; known scales: {known}") from error


def dota2_videos(scale: ScaleSettings, size: int | None = None) -> list[LabeledVideo]:
    """The Dota2 suite at the requested scale (cached per process)."""
    spec = DatasetSpec.dota2(size=min(size or scale.dataset_size, PAPER_DOTA2_SIZE))
    return shared_cache.get(spec)


def lol_videos(scale: ScaleSettings, size: int | None = None) -> list[LabeledVideo]:
    """The LoL suite at the requested scale (cached per process)."""
    spec = DatasetSpec.lol(size=min(size or scale.dataset_size, PAPER_LOL_SIZE))
    return shared_cache.get(spec)


def default_config() -> LightorConfig:
    """The paper's default configuration."""
    return LightorConfig.paper_defaults()
