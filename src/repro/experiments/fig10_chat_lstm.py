"""EXP-F10 — Figure 10: LIGHTOR vs Chat-LSTM as a function of training size.

Panel (a): both systems trained on a single labelled LoL video.
Panel (b): LIGHTOR trained on one video vs Chat-LSTM trained on the "large"
training set (123 videos at paper scale).  Both panels report Video
Precision@K (start) on held-out LoL videos.  Expected shape: LIGHTOR with a
single video beats Chat-LSTM in both panels; Chat-LSTM improves with more
data but stays behind because it cannot adjust for the chat delay.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.chat_lstm import ChatLSTMBaseline
from repro.core.initializer.predictor import FeatureSet
from repro.datasets.generate import LabeledVideo
from repro.datasets.loaders import train_test_split
from repro.eval.metrics import video_precision_start_at_k
from repro.eval.reports import format_caption, format_series
from repro.eval.runner import EvaluationRunner
from repro.experiments.common import default_config, lol_videos, resolve_scale

__all__ = ["run", "report", "chat_lstm_start_curve"]


def chat_lstm_start_curve(
    baseline: ChatLSTMBaseline,
    test_pool: list[LabeledVideo],
    ks: list[int],
    tolerance: float,
) -> dict[int, float]:
    """Video Precision@K (start) curve of a fitted Chat-LSTM baseline."""
    curve: dict[int, float] = {}
    max_k = max(ks)
    proposals = {
        labelled.video.video_id: baseline.propose(labelled.chat_log, k=max_k)
        for labelled in test_pool
    }
    for k in ks:
        scores = []
        for labelled in test_pool:
            dots = proposals[labelled.video.video_id][:k]
            scores.append(
                video_precision_start_at_k(
                    [dot.position for dot in dots], labelled.highlights, k=k, tolerance=tolerance
                )
            )
        curve[k] = float(np.mean(scores)) if scores else 0.0
    return curve


def run(scale: str = "small") -> dict:
    """Run both panels of Figure 10 on the LoL suite."""
    settings = resolve_scale(scale)
    config = default_config()
    dataset = lol_videos(settings, size=max(settings.lstm_many + settings.n_test, 8))
    many = min(settings.lstm_many, len(dataset) - 2)
    train_pool, test_pool = train_test_split(dataset, n_train=max(many, 1))
    test_pool = test_pool[: max(2, settings.n_test // 2)]
    ks = list(settings.k_values)

    runner = EvaluationRunner(config=config, feature_set=FeatureSet.ALL)
    lightor = runner.fit_initializer(train_pool[:1])
    lightor_curve = runner.start_precision_curve(lightor, test_pool, ks)

    lstm_single = ChatLSTMBaseline()
    lstm_single.fit(train_pool[:1])
    lstm_single_curve = chat_lstm_start_curve(
        lstm_single, test_pool, ks, config.start_tolerance
    )

    lstm_many = ChatLSTMBaseline()
    lstm_many.fit(train_pool[:many])
    lstm_many_curve = chat_lstm_start_curve(lstm_many, test_pool, ks, config.start_tolerance)

    return {
        "ks": ks,
        "panel_a": {
            "lightor (1 video)": lightor_curve,
            "chat-lstm (1 video)": lstm_single_curve,
        },
        "panel_b": {
            "lightor (1 video)": lightor_curve,
            f"chat-lstm ({many} videos)": lstm_many_curve,
        },
        "n_many_videos": many,
        "n_test_videos": len(test_pool),
        "lstm_training_seconds": {
            "1 video": lstm_single.training_seconds_,
            f"{many} videos": lstm_many.training_seconds_,
        },
    }


def report(results: dict) -> str:
    """Render both panels as series tables."""
    lines = [
        format_caption(
            "Figure 10a",
            f"LIGHTOR vs Chat-LSTM, both trained on 1 LoL video "
            f"({results['n_test_videos']} test videos)",
        ),
        format_series("k", results["panel_a"]),
        format_caption(
            "Figure 10b",
            f"LIGHTOR (1 video) vs Chat-LSTM ({results['n_many_videos']} videos)",
        ),
        format_series("k", results["panel_b"]),
        "Chat-LSTM training time: "
        + ", ".join(f"{name}: {seconds:.1f}s" for name, seconds in results["lstm_training_seconds"].items()),
    ]
    return "\n".join(lines)
