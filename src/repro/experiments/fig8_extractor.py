"""EXP-F8 — Figure 8: evaluation of the Highlight Extractor over crowd rounds.

The paper publishes red-dot tasks to the crowd, recomputes dot positions
after every ~10 responses, and repeats; Video Precision@K (start and end) is
plotted per iteration for LIGHTOR against the SocialSkip and MOOCer
baselines, which are not iterative and use the first round's interaction
data only.  Expected shape: LIGHTOR improves over iterations and ends well
above both baselines on start and end precision.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.moocer import MoocerExtractor
from repro.baselines.socialskip import SocialSkipExtractor
from repro.core.extractor.extractor import HighlightExtractor
from repro.core.extractor.plays import interactions_to_plays
from repro.core.initializer.predictor import FeatureSet
from repro.core.types import RedDotType
from repro.datasets.loaders import train_test_split
from repro.eval.metrics import video_precision_end_at_k, video_precision_start_at_k
from repro.eval.reports import format_caption, format_series
from repro.eval.runner import EvaluationRunner
from repro.experiments.common import default_config, dota2_videos, resolve_scale
from repro.simulation.crowd import CrowdSimulator
from repro.utils.rng import SeedSequenceFactory

__all__ = ["run", "report"]


def run(
    scale: str = "small",
    k: int = 5,
    n_iterations: int = 5,
    crowd_seed: int = 17,
) -> dict:
    """Run the iterative extraction experiment on a handful of test videos."""
    settings = resolve_scale(scale)
    config = default_config().with_overrides(max_extractor_iterations=n_iterations)
    dataset = dota2_videos(settings)
    train_pool, test_pool = train_test_split(dataset, n_train=1)
    test_pool = test_pool[: settings.crowd_videos]

    runner = EvaluationRunner(config=config, feature_set=FeatureSet.ALL)
    initializer = runner.fit_initializer(train_pool)
    extractor = HighlightExtractor(config=config)
    crowd = CrowdSimulator(seeds=SeedSequenceFactory(crowd_seed))

    lightor_start: dict[int, list[float]] = {i: [] for i in range(1, n_iterations + 1)}
    lightor_end: dict[int, list[float]] = {i: [] for i in range(1, n_iterations + 1)}
    socialskip_start: list[float] = []
    socialskip_end: list[float] = []
    moocer_start: list[float] = []
    moocer_end: list[float] = []
    type_accuracy_records: list[float] = []

    for labelled in test_pool:
        video = labelled.video
        dots = initializer.propose(labelled.chat_log, k=k)
        source = crowd.interaction_source(video)
        results = extractor.extract_all(dots, source, video_duration=video.duration)

        # Per-iteration start/end positions (carry the best so far forward).
        per_iteration_starts: dict[int, list[float]] = {i: [] for i in range(1, n_iterations + 1)}
        per_iteration_ends: dict[int, list[float]] = {i: [] for i in range(1, n_iterations + 1)}
        for dot, result in zip(dots, results):
            best_start = dot.position
            best_end: float | None = None
            for iteration in range(1, n_iterations + 1):
                trace_index = min(iteration, result.n_iterations) - 1
                if trace_index >= 0 and result.iterations:
                    for trace in result.iterations[: trace_index + 1]:
                        if trace.boundary is not None:
                            best_start = trace.boundary.start
                            best_end = trace.boundary.end
                per_iteration_starts[iteration].append(best_start)
                if best_end is not None:
                    per_iteration_ends[iteration].append(best_end)
            # Type I/II classification accuracy against ground truth.
            nearest = min(
                video.highlights,
                key=lambda h: abs(dot.position - h.midpoint),
                default=None,
            )
            if nearest is not None and result.iterations:
                truth_is_type_ii = dot.position <= nearest.end
                predicted = result.iterations[0].classified_type
                if predicted is not RedDotType.UNKNOWN:
                    type_accuracy_records.append(
                        1.0 if (predicted is RedDotType.TYPE_II) == truth_is_type_ii else 0.0
                    )

        for iteration in range(1, n_iterations + 1):
            lightor_start[iteration].append(
                video_precision_start_at_k(
                    per_iteration_starts[iteration], labelled.highlights, k=k
                )
            )
            lightor_end[iteration].append(
                video_precision_end_at_k(per_iteration_ends[iteration], labelled.highlights, k=k)
            )

        # Baselines consume the first round of interaction data only.
        first_round_interactions = []
        for dot in dots:
            first_round_interactions.extend(crowd.collect_round(video, dot, round_index=0))
        plays = interactions_to_plays(first_round_interactions, video_duration=video.duration)

        socialskip = SocialSkipExtractor().extract(first_round_interactions, video.duration, k=k)
        socialskip_start.append(
            video_precision_start_at_k([h.start for h in socialskip], labelled.highlights, k=k)
        )
        socialskip_end.append(
            video_precision_end_at_k([h.end for h in socialskip], labelled.highlights, k=k)
        )
        moocer = MoocerExtractor().extract(plays, video.duration, k=k)
        moocer_start.append(
            video_precision_start_at_k([h.start for h in moocer], labelled.highlights, k=k)
        )
        moocer_end.append(
            video_precision_end_at_k([h.end for h in moocer], labelled.highlights, k=k)
        )

    def average_curve(per_iteration: dict[int, list[float]]) -> dict[int, float]:
        return {i: float(np.mean(values)) if values else 0.0 for i, values in per_iteration.items()}

    socialskip_start_avg = float(np.mean(socialskip_start)) if socialskip_start else 0.0
    socialskip_end_avg = float(np.mean(socialskip_end)) if socialskip_end else 0.0
    moocer_start_avg = float(np.mean(moocer_start)) if moocer_start else 0.0
    moocer_end_avg = float(np.mean(moocer_end)) if moocer_end else 0.0
    iterations = list(range(1, n_iterations + 1))

    return {
        "k": k,
        "iterations": iterations,
        "start": {
            "lightor": average_curve(lightor_start),
            "socialskip": {i: socialskip_start_avg for i in iterations},
            "moocer": {i: moocer_start_avg for i in iterations},
        },
        "end": {
            "lightor": average_curve(lightor_end),
            "socialskip": {i: socialskip_end_avg for i in iterations},
            "moocer": {i: moocer_end_avg for i in iterations},
        },
        "type_classification_accuracy": (
            float(np.mean(type_accuracy_records)) if type_accuracy_records else 0.0
        ),
        "n_test_videos": len(test_pool),
    }


def report(results: dict) -> str:
    """Render the per-iteration start/end precision curves."""
    lines = [
        format_caption(
            "Figure 8a",
            f"Video Precision@{results['k']} (start) per crowd iteration "
            f"({results['n_test_videos']} videos)",
        ),
        format_series("iteration", results["start"]),
        format_caption("Figure 8b", f"Video Precision@{results['k']} (end) per crowd iteration"),
        format_series("iteration", results["end"]),
        (
            "Type I/II classification accuracy (first round): "
            f"{results['type_classification_accuracy']:.3f}"
        ),
    ]
    return "\n".join(lines)
