"""EXP-F9 — Figure 9: applicability of LIGHTOR on a Twitch-like platform.

The paper crawls the twenty most recent recorded videos of the top-10 Dota2
channels and plots the cumulative distribution of (a) chat messages per hour
and (b) viewer counts, against the thresholds the two LIGHTOR components
need (500 messages/hour for the Initializer, 100 viewers for the Extractor).
Expected shape: more than 80 % of the videos clear the chat-rate threshold
and all of them clear the viewer threshold.
"""

from __future__ import annotations

from repro.core.types import VideoChatLog
from repro.eval.reports import format_caption, format_table
from repro.experiments.common import default_config, resolve_scale
from repro.platform.api import SimulatedStreamingAPI
from repro.utils.histograms import cumulative_distribution, empirical_cdf_at
from repro.utils.rng import SeedSequenceFactory

__all__ = ["run", "report"]


def run(
    scale: str = "small",
    n_channels: int = 10,
    videos_per_channel: int | None = None,
    seed: int = 2020,
) -> dict:
    """Crawl the simulated platform's popular Dota2 videos and compute CDFs."""
    settings = resolve_scale(scale)
    config = default_config()
    if videos_per_channel is None:
        videos_per_channel = 20 if settings.name == "paper" else 5
    api = SimulatedStreamingAPI(seeds=SeedSequenceFactory(seed))

    chat_rates: list[float] = []
    viewer_counts: list[float] = []
    for channel in api.top_channels("dota2", count=n_channels):
        for video in api.recent_videos(channel, count=videos_per_channel):
            messages = api.get_chat_replay(video.video_id)
            chat_log = VideoChatLog(video=video, messages=messages)
            chat_rates.append(chat_log.messages_per_hour)
            viewer_counts.append(float(video.viewer_count))

    chat_values, chat_cdf = cumulative_distribution(chat_rates)
    viewer_values, viewer_cdf = cumulative_distribution(viewer_counts)

    return {
        "n_videos": len(chat_rates),
        "chat_threshold": config.min_messages_per_hour,
        "viewer_threshold": float(config.min_viewers),
        "fraction_below_chat_threshold": empirical_cdf_at(
            chat_rates, config.min_messages_per_hour
        ),
        "fraction_below_viewer_threshold": empirical_cdf_at(
            viewer_counts, float(config.min_viewers)
        ),
        "chat_rate_percentiles": {
            "p10": float(chat_values[int(0.10 * (len(chat_values) - 1))]),
            "p50": float(chat_values[int(0.50 * (len(chat_values) - 1))]),
            "p90": float(chat_values[int(0.90 * (len(chat_values) - 1))]),
        },
        "viewer_percentiles": {
            "p10": float(viewer_values[int(0.10 * (len(viewer_values) - 1))]),
            "p50": float(viewer_values[int(0.50 * (len(viewer_values) - 1))]),
            "p90": float(viewer_values[int(0.90 * (len(viewer_values) - 1))]),
        },
    }


def report(results: dict) -> str:
    """Render the applicability summary."""
    eligible_chat = 100.0 * (1.0 - results["fraction_below_chat_threshold"])
    eligible_viewers = 100.0 * (1.0 - results["fraction_below_viewer_threshold"])
    lines = [
        format_caption(
            "Figure 9",
            f"applicability over {results['n_videos']} recent popular recorded videos",
        ),
        format_table(
            ["quantity", "threshold", "% videos above threshold", "p10", "p50", "p90"],
            [
                [
                    "chat msgs/hour",
                    results["chat_threshold"],
                    round(eligible_chat, 1),
                    results["chat_rate_percentiles"]["p10"],
                    results["chat_rate_percentiles"]["p50"],
                    results["chat_rate_percentiles"]["p90"],
                ],
                [
                    "viewers",
                    results["viewer_threshold"],
                    round(eligible_viewers, 1),
                    results["viewer_percentiles"]["p10"],
                    results["viewer_percentiles"]["p50"],
                    results["viewer_percentiles"]["p90"],
                ],
            ],
        ),
    ]
    return "\n".join(lines)
