"""Experiment modules: one per table/figure of the paper's evaluation.

Every experiment module exposes a ``run(scale=...)`` function returning a
plain dictionary of results and a ``report(results)`` function rendering the
rows/series the paper reports.  The registry maps experiment ids (``fig6``,
``table1``, ...) to those entry points so the CLI and the benchmark harness
can drive them uniformly.

``scale`` trades evaluation breadth for runtime: ``"small"`` (default for
benchmarks and CI) uses a handful of test videos, ``"paper"`` uses the
paper-sized suites (60 Dota2 / 173 LoL videos).
"""

from repro.experiments.registry import EXPERIMENTS, ExperimentSpec, get_experiment, run_experiment

__all__ = ["EXPERIMENTS", "ExperimentSpec", "get_experiment", "run_experiment"]
