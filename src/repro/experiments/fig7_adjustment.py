"""EXP-F7 — Figure 7: evaluation of the Initializer's adjustment stage.

Panel (a): Video Precision@K (start) of the red dots produced by
Toretter (social-network burst detection, no delay adjustment), LIGHTOR
(peak minus learned constant) and the Ideal upper bound (the chat precision
of the prediction stage — every correctly predicted window gets a perfect
dot).  Expected shape: LIGHTOR ≫ Toretter and close to Ideal.

Panel (b): the learned adjustment constant ``c`` as the number of training
videos varies.  Expected shape: stable within a narrow band around the
simulated chat reaction delay.
"""

from __future__ import annotations

from repro.baselines.toretter import ToretterDetector
from repro.core.initializer.predictor import FeatureSet
from repro.datasets.loaders import train_test_split
from repro.eval.metrics import video_precision_start_at_k
from repro.eval.reports import format_caption, format_series
from repro.eval.runner import EvaluationRunner
from repro.experiments.common import default_config, dota2_videos, resolve_scale

import numpy as np

__all__ = ["run", "report"]


def run(scale: str = "small") -> dict:
    """Run both panels of Figure 7 on the Dota2 suite."""
    settings = resolve_scale(scale)
    config = default_config()
    dataset = dota2_videos(settings)
    max_train = min(10, len(dataset) - 1)
    train_pool, test_pool = train_test_split(dataset, n_train=max_train)
    test_pool = test_pool[: settings.n_test]
    ks = list(settings.k_values)

    runner = EvaluationRunner(config=config, feature_set=FeatureSet.ALL)
    initializer = runner.fit_initializer(train_pool)

    lightor_curve = runner.start_precision_curve(initializer, test_pool, ks)
    ideal_curve = runner.chat_precision_curve(initializer, test_pool, ks)

    toretter = ToretterDetector(min_dot_spacing=config.min_dot_spacing)
    toretter_curve: dict[int, float] = {}
    for k in ks:
        scores = [
            video_precision_start_at_k(
                [dot.position for dot in toretter.propose(v.chat_log, k=k)],
                v.highlights,
                k=k,
                tolerance=config.start_tolerance,
            )
            for v in test_pool
        ]
        toretter_curve[k] = float(np.mean(scores)) if scores else 0.0

    # Panel (b): stability of the learned constant.
    training_sizes = [size for size in (1, 2, 4, 6, 8, 10) if size <= len(train_pool)]
    constants: dict[int, float] = {}
    for size in training_sizes:
        fitted = runner.fit_initializer(train_pool[:size])
        constants[size] = fitted.model.adjustment_constant

    return {
        "ks": ks,
        "curves": {
            "toretter": toretter_curve,
            "lightor": lightor_curve,
            "ideal": ideal_curve,
        },
        "constants": constants,
        "n_test_videos": len(test_pool),
    }


def report(results: dict) -> str:
    """Render both panels as series tables."""
    lines = [
        format_caption(
            "Figure 7a",
            f"Video Precision@K (start): Toretter vs LIGHTOR vs Ideal "
            f"({results['n_test_videos']} test videos)",
        ),
        format_series("k", results["curves"]),
        format_caption("Figure 7b", "learned adjustment constant c vs training size"),
        format_series("# training videos", {"constant c (s)": results["constants"]}),
    ]
    return "\n".join(lines)
