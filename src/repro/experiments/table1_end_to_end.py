"""EXP-T1 — Table I: end-to-end LIGHTOR vs Joint-LSTM.

LIGHTOR is trained on one labelled LoL video and run end to end (Initializer
plus crowd-driven Extractor) on Dota2 test videos; Joint-LSTM is trained on a
large LoL training set and applied to the same test videos.  The table
reports Video Precision@5 (start and end) and the training time of both
systems.  Expected shape: LIGHTOR's precision is clearly higher and its
training time is orders of magnitude smaller.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.joint_lstm import JointLSTMBaseline
from repro.core.initializer.predictor import FeatureSet
from repro.datasets.loaders import train_test_split
from repro.eval.metrics import video_precision_end_at_k, video_precision_start_at_k
from repro.eval.reports import format_caption, format_table
from repro.eval.runner import EvaluationRunner
from repro.experiments.common import default_config, dota2_videos, lol_videos, resolve_scale

__all__ = ["run", "report"]


def run(scale: str = "small", k: int = 5, crowd_seed: int = 23) -> dict:
    """Run the Table I comparison (train on LoL, test end-to-end on Dota2)."""
    settings = resolve_scale(scale)
    config = default_config()
    lol_dataset = lol_videos(settings, size=max(settings.lstm_many + 2, 4))
    dota_dataset = dota2_videos(settings)
    lol_train, _ = train_test_split(lol_dataset, n_train=max(settings.lstm_many, 1))
    dota_test = dota_dataset[: settings.crowd_videos]

    runner = EvaluationRunner(config=config, feature_set=FeatureSet.ALL)
    lightor_metrics = runner.run_pipeline(
        lol_train[:1], dota_test, k=k, crowd_seed=crowd_seed
    )

    joint = JointLSTMBaseline()
    joint.fit(lol_train[: settings.lstm_many])
    joint_start: list[float] = []
    joint_end: list[float] = []
    for labelled in dota_test:
        dots = joint.propose(labelled.chat_log, k=k)
        positions = [dot.position for dot in dots]
        joint_start.append(
            video_precision_start_at_k(
                positions, labelled.highlights, k=k, tolerance=config.start_tolerance
            )
        )
        # Joint-LSTM predicts frames, not boundaries; following the paper's
        # protocol its end position is the predicted frame plus the average
        # highlight length it saw in training.
        mean_length = float(
            np.mean([h.duration for v in lol_train[: settings.lstm_many] for h in v.highlights])
        )
        joint_end.append(
            video_precision_end_at_k(
                [position + mean_length for position in positions],
                labelled.highlights,
                k=k,
                tolerance=config.end_tolerance,
            )
        )

    return {
        "k": k,
        "lightor": {
            "start_precision": lightor_metrics["start_precision"],
            "end_precision": lightor_metrics["end_precision"],
            "training_seconds": lightor_metrics["training_seconds"],
            "training_videos": 1,
        },
        "joint_lstm": {
            "start_precision": float(np.mean(joint_start)) if joint_start else 0.0,
            "end_precision": float(np.mean(joint_end)) if joint_end else 0.0,
            "training_seconds": joint.training_seconds_,
            "training_videos": min(settings.lstm_many, len(lol_train)),
        },
        "n_test_videos": len(dota_test),
    }


def report(results: dict) -> str:
    """Render Table I."""
    k = results["k"]
    rows = []
    for system in ("lightor", "joint_lstm"):
        entry = results[system]
        rows.append(
            [
                system,
                entry["start_precision"],
                entry["end_precision"],
                f"{entry['training_seconds']:.2f}s",
                entry["training_videos"],
            ]
        )
    return "\n".join(
        [
            format_caption(
                "Table I",
                f"end-to-end comparison on {results['n_test_videos']} Dota2 test videos",
            ),
            format_table(
                [
                    "system",
                    f"Precision@{k} (start)",
                    f"Precision@{k} (end)",
                    "training time",
                    "# training videos",
                ],
                rows,
            ),
        ]
    )
