"""Ablation experiments for the design choices DESIGN.md calls out.

Not a paper figure; these benches quantify how much each design decision
contributes, the way a reviewer would ask for:

* **adjustment on/off** — red dots at the raw chat peak vs peak minus the
  learned constant (isolates the adjustment stage of the Initializer);
* **extractor stages** — the full filtering → classification → aggregation
  dataflow vs dropping the play filter or forcing naive median aggregation
  regardless of the dot's type (isolates the Extractor's noise handling).
"""

from __future__ import annotations

import numpy as np

from repro.core.extractor.classifier import RedDotTypeClassifier
from repro.core.extractor.extractor import HighlightExtractor
from repro.core.extractor.filtering import PlayFilter
from repro.core.initializer.predictor import FeatureSet
from repro.core.types import RedDotType
from repro.datasets.loaders import train_test_split
from repro.eval.metrics import video_precision_start_at_k
from repro.eval.reports import format_caption, format_table
from repro.eval.runner import EvaluationRunner
from repro.experiments.common import default_config, dota2_videos, resolve_scale
from repro.simulation.crowd import CrowdSimulator
from repro.utils.rng import SeedSequenceFactory

__all__ = ["run", "report"]


class _AlwaysTypeII(RedDotTypeClassifier):
    """Classifier ablation: treat every dot as Type II (naive aggregation)."""

    def classify(self, plays, dot):  # noqa: D102 - interface documented on base
        if not plays:
            return RedDotType.UNKNOWN
        return RedDotType.TYPE_II


class _NoOpFilter(PlayFilter):
    """Filter ablation: keep every play attributed to the dot."""

    def filter(self, plays, dot):  # noqa: D102 - interface documented on base
        return list(plays)


def run(scale: str = "small", k: int = 5, crowd_seed: int = 31) -> dict:
    """Measure the contribution of the adjustment stage and extractor stages."""
    settings = resolve_scale(scale)
    config = default_config()
    dataset = dota2_videos(settings)
    train_pool, test_pool = train_test_split(dataset, n_train=1)
    test_pool = test_pool[: settings.crowd_videos]

    runner = EvaluationRunner(config=config, feature_set=FeatureSet.ALL)
    initializer = runner.fit_initializer(train_pool)

    # --- Initializer ablation: adjusted dots vs raw chat peaks. ------------
    adjusted_scores: list[float] = []
    unadjusted_scores: list[float] = []
    for labelled in test_pool:
        windows = initializer.top_windows(labelled.chat_log, k=k)
        peaks = [window.peak_timestamp() for window in windows]
        dots = [dot.position for dot in initializer.propose(labelled.chat_log, k=k)]
        adjusted_scores.append(
            video_precision_start_at_k(dots, labelled.highlights, k=k)
        )
        unadjusted_scores.append(
            video_precision_start_at_k(peaks, labelled.highlights, k=k)
        )

    # --- Extractor ablations over one crowd-driven video set. --------------
    def extractor_score(extractor: HighlightExtractor, seed: int) -> float:
        crowd = CrowdSimulator(seeds=SeedSequenceFactory(seed))
        scores = []
        for labelled in test_pool:
            dots = initializer.propose(labelled.chat_log, k=k)
            results = extractor.extract_all(
                dots, crowd.interaction_source(labelled.video),
                video_duration=labelled.video.duration,
            )
            starts = [
                r.highlight.start if r.highlight is not None else r.dot.position
                for r in results
            ]
            scores.append(video_precision_start_at_k(starts, labelled.highlights, k=k))
        return float(np.mean(scores)) if scores else 0.0

    full = extractor_score(HighlightExtractor(config=config), crowd_seed)
    no_filter = extractor_score(
        HighlightExtractor(config=config, play_filter=_NoOpFilter(config=config)), crowd_seed
    )
    no_classifier = extractor_score(
        HighlightExtractor(config=config, classifier=_AlwaysTypeII()), crowd_seed
    )

    return {
        "k": k,
        "initializer": {
            "with_adjustment": float(np.mean(adjusted_scores)),
            "without_adjustment": float(np.mean(unadjusted_scores)),
        },
        "extractor": {
            "full_dataflow": full,
            "no_play_filter": no_filter,
            "no_type_classifier": no_classifier,
        },
        "n_test_videos": len(test_pool),
    }


def report(results: dict) -> str:
    """Render both ablation tables."""
    k = results["k"]
    return "\n".join(
        [
            format_caption("Ablation A", f"adjustment stage (Video Precision@{k} start)"),
            format_table(
                ["variant", f"precision@{k}"],
                [
                    ["peak - c (full)", results["initializer"]["with_adjustment"]],
                    ["raw chat peak", results["initializer"]["without_adjustment"]],
                ],
            ),
            format_caption("Ablation B", f"extractor stages (Video Precision@{k} start)"),
            format_table(
                ["variant", f"precision@{k}"],
                [
                    ["full filtering+classification+aggregation", results["extractor"]["full_dataflow"]],
                    ["without play filter", results["extractor"]["no_play_filter"]],
                    ["without Type I/II classifier", results["extractor"]["no_type_classifier"]],
                ],
            ),
        ]
    )
