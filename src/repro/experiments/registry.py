"""Registry of the reproduction experiments.

Maps experiment ids to their ``run`` / ``report`` entry points so the CLI and
the benchmark harness can drive every paper artifact uniformly::

    from repro.experiments import run_experiment
    results, text = run_experiment("fig7", scale="small")
    print(text)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.experiments import (
    ablations,
    fig2_chat_analysis,
    fig3_play_offsets,
    fig6_prediction,
    fig7_adjustment,
    fig8_extractor,
    fig9_applicability,
    fig10_chat_lstm,
    fig11_generalization,
    table1_end_to_end,
)
from repro.utils.validation import ValidationError

__all__ = ["ExperimentSpec", "EXPERIMENTS", "get_experiment", "run_experiment"]


@dataclass(frozen=True)
class ExperimentSpec:
    """One reproducible paper artifact."""

    experiment_id: str
    paper_artifact: str
    description: str
    run: Callable[..., dict]
    report: Callable[[dict], str]


EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.experiment_id: spec
    for spec in (
        ExperimentSpec(
            "fig2", "Figure 2", "chat histogram, reaction delay and feature separation",
            fig2_chat_analysis.run, fig2_chat_analysis.report,
        ),
        ExperimentSpec(
            "fig3", "Figure 3", "play start-offset distributions for Type I / Type II dots",
            fig3_play_offsets.run, fig3_play_offsets.report,
        ),
        ExperimentSpec(
            "fig6", "Figure 6", "prediction stage: feature ablation and training-size effect",
            fig6_prediction.run, fig6_prediction.report,
        ),
        ExperimentSpec(
            "fig7", "Figure 7", "adjustment stage: Toretter vs LIGHTOR vs Ideal, constant stability",
            fig7_adjustment.run, fig7_adjustment.report,
        ),
        ExperimentSpec(
            "fig8", "Figure 8", "extractor over crowd iterations vs SocialSkip and MOOCer",
            fig8_extractor.run, fig8_extractor.report,
        ),
        ExperimentSpec(
            "fig9", "Figure 9", "applicability CDFs over popular recorded videos",
            fig9_applicability.run, fig9_applicability.report,
        ),
        ExperimentSpec(
            "fig10", "Figure 10", "LIGHTOR vs Chat-LSTM by training size",
            fig10_chat_lstm.run, fig10_chat_lstm.report,
        ),
        ExperimentSpec(
            "fig11", "Figure 11", "cross-game generalization of LIGHTOR vs Chat-LSTM",
            fig11_generalization.run, fig11_generalization.report,
        ),
        ExperimentSpec(
            "table1", "Table I", "end-to-end LIGHTOR vs Joint-LSTM",
            table1_end_to_end.run, table1_end_to_end.report,
        ),
        ExperimentSpec(
            "ablations", "(extension)", "adjustment and extractor-stage ablations",
            ablations.run, ablations.report,
        ),
    )
}


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Return the experiment spec for ``experiment_id``."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError as error:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ValidationError(
            f"unknown experiment {experiment_id!r}; known experiments: {known}"
        ) from error


def run_experiment(experiment_id: str, scale: str = "small", **kwargs) -> tuple[dict, str]:
    """Run an experiment and return ``(results, formatted_report)``."""
    spec = get_experiment(experiment_id)
    results = spec.run(scale=scale, **kwargs)
    return results, spec.report(results)
