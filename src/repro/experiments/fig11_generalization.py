"""EXP-F11 — Figure 11: cross-game generalization of LIGHTOR vs Chat-LSTM.

Both systems are trained on LoL videos and tested on held-out LoL videos and
on Dota2 videos.  Expected shape: LIGHTOR's precision is essentially the same
on both games (its features are game-agnostic), while Chat-LSTM drops sharply
on Dota2 (its character model memorised the LoL reaction vocabulary).
"""

from __future__ import annotations

from repro.baselines.chat_lstm import ChatLSTMBaseline
from repro.core.initializer.predictor import FeatureSet
from repro.datasets.loaders import train_test_split
from repro.eval.reports import format_caption, format_series
from repro.eval.runner import EvaluationRunner
from repro.experiments.common import default_config, dota2_videos, lol_videos, resolve_scale
from repro.experiments.fig10_chat_lstm import chat_lstm_start_curve

__all__ = ["run", "report"]


def run(scale: str = "small") -> dict:
    """Train on LoL, test on LoL and Dota2 for both systems."""
    settings = resolve_scale(scale)
    config = default_config()
    lol_dataset = lol_videos(settings)
    dota_dataset = dota2_videos(settings)

    lol_train, lol_test = train_test_split(lol_dataset, n_train=1)
    lol_test = lol_test[: max(2, settings.n_test // 2)]
    dota_test = dota_dataset[: max(2, settings.n_test // 2)]
    ks = list(settings.k_values)

    runner = EvaluationRunner(config=config, feature_set=FeatureSet.ALL)
    lightor = runner.fit_initializer(lol_train)
    lightor_lol = runner.start_precision_curve(lightor, lol_test, ks)
    lightor_dota = runner.start_precision_curve(lightor, dota_test, ks)

    lstm_train_size = min(settings.lstm_many, max(1, len(lol_dataset) - len(lol_test) - 1))
    lstm = ChatLSTMBaseline()
    lstm.fit(lol_dataset[:lstm_train_size])
    lstm_lol = chat_lstm_start_curve(lstm, lol_test, ks, config.start_tolerance)
    lstm_dota = chat_lstm_start_curve(lstm, dota_test, ks, config.start_tolerance)

    return {
        "ks": ks,
        "lightor": {"LoL": lightor_lol, "Dota2": lightor_dota},
        "chat_lstm": {"LoL": lstm_lol, "Dota2": lstm_dota},
        "lstm_train_videos": lstm_train_size,
        "n_test_videos": {"LoL": len(lol_test), "Dota2": len(dota_test)},
    }


def report(results: dict) -> str:
    """Render both panels as series tables."""
    lines = [
        format_caption(
            "Figure 11a",
            "LIGHTOR trained on LoL, tested on LoL and Dota2 (Video Precision@K start)",
        ),
        format_series("k", results["lightor"]),
        format_caption(
            "Figure 11b",
            f"Chat-LSTM trained on {results['lstm_train_videos']} LoL videos, "
            "tested on LoL and Dota2",
        ),
        format_series("k", results["chat_lstm"]),
    ]
    return "\n".join(lines)
