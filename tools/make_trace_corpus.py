"""Regenerate the golden trace corpus in ``tests/traces/``.

The corpus pins the trace file format *and* the end-to-end determinism of
the whole stack: each committed trace carries the fingerprints its
recording run produced, and ``tests/test_trace.py::TestGoldenCorpus``
replays them on every build — a format break, a workload-synthesis change
or a scoring change all fail that test loudly.

Run from the repo root after any intentional change to the trace layout
(which must also bump ``TRACE_VERSION``) or to workload synthesis::

    PYTHONPATH=src python tools/make_trace_corpus.py

The recordings are deterministic: the same repo state always regenerates
byte-identical files, so a dirty ``git diff`` after running this script is
itself a signal that behaviour changed.

The serving model is trained exactly as the ``repro load`` CLI trains it
(``DatasetSpec.dota2(size=1, seed=<spec seed>)`` + default config) so the
committed fingerprints are reproducible from the trace file alone.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro import LightorConfig  # noqa: E402
from repro.core.initializer.initializer import HighlightInitializer  # noqa: E402
from repro.datasets import DatasetSpec, build_dataset  # noqa: E402
from repro.loadgen import (  # noqa: E402
    LoadWorkload,
    WorkloadSpec,
    build_scenario_workload,
    run_load,
    write_trace,
)

CORPUS_DIR = REPO / "tests" / "traces"

# Tiny on purpose: the corpus rides along in git and replays inside tier-1.
SPEC = WorkloadSpec(channels=2, viewers=10, duration=300.0, batch_size=16, seed=2020)

# (file stem, workload builder) — one steady fleet, one scenario shape, so
# the corpus covers both the plain and the perturbed batch streams.
CORPUS = (
    ("steady", lambda: LoadWorkload.from_spec(SPEC)),
    ("flash-crowd", lambda: build_scenario_workload("flash-crowd", SPEC)),
)


def main() -> int:
    dataset = build_dataset(DatasetSpec.dota2(size=1, seed=SPEC.seed))
    initializer = HighlightInitializer(config=LightorConfig())
    initializer.fit([dataset[0].training_pair])
    CORPUS_DIR.mkdir(parents=True, exist_ok=True)
    for stem, build in CORPUS:
        workload = build()
        report = run_load(
            SPEC, initializer, shards=2, workers=2, workload=workload
        )
        assert report.divergences == [], (stem, report.divergences)
        path = CORPUS_DIR / f"{stem}.trace"
        written = write_trace(
            path,
            workload,
            fingerprints={
                video_id: outcome.fingerprint
                for video_id, outcome in report.outcomes.items()
            },
            transport=report.transport,
            wire_codec=report.wire_codec,
            shards=report.shards,
        )
        print(
            f"{path.relative_to(REPO)}: {written:,} bytes, "
            f"{workload.total_events:,} events over {len(workload.plans)} channel(s)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
