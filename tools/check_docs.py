#!/usr/bin/env python
"""Documentation gate: links, doctests and CLI examples must not rot.

Three checks over ``README.md`` and ``docs/*.md`` (run from the repo root
with ``PYTHONPATH=src python tools/check_docs.py``):

1. **Intra-repo links** — every relative markdown link target must exist.
2. **Doctest examples** — every fenced code block containing ``>>>`` lines
   is executed with :mod:`doctest`; examples in the docs are promises, so
   they run against the real package.
3. **CLI example blocks** — fenced blocks wrapped in
   ``<!-- cli:<subcommand> --help -->`` … ``<!-- /cli -->`` markers must
   equal the live ``--help`` output of that subcommand.  ``--fix``
   regenerates them in place, which is how the blocks were produced — the
   docs can never drift from the parser again.

Exit status is non-zero when any check fails (the CI docs job gates on it).
"""

from __future__ import annotations

import argparse
import doctest
import os
import re
import sys
from pathlib import Path

# argparse wraps help text to the terminal width; pin it so the generated
# blocks are identical on every machine (and in CI).
os.environ["COLUMNS"] = "88"

REPO_ROOT = Path(__file__).resolve().parents[1]

_LINK_PATTERN = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
_FENCE_PATTERN = re.compile(r"^```")
_CLI_OPEN = re.compile(r"<!--\s*cli:([a-z-]+)\s+--help\s*-->")
_CLI_CLOSE = "<!-- /cli -->"


def doc_files() -> list[Path]:
    """README plus every markdown page under docs/."""
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


# ----------------------------------------------------------------- link check
def check_links(path: Path) -> list[str]:
    """Relative link targets that do not exist, as error strings."""
    errors = []
    for line_number, line in enumerate(path.read_text().splitlines(), start=1):
        for target in _LINK_PATTERN.findall(line):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                errors.append(f"{path.relative_to(REPO_ROOT)}:{line_number}: broken link {target!r}")
    return errors


# ------------------------------------------------------------------- doctests
def fenced_blocks(text: str) -> list[tuple[int, str]]:
    """Every fenced code block as ``(starting line number, content)``."""
    blocks = []
    lines = text.splitlines()
    index = 0
    while index < len(lines):
        if _FENCE_PATTERN.match(lines[index]):
            start = index + 1
            body = []
            index += 1
            while index < len(lines) and not _FENCE_PATTERN.match(lines[index]):
                body.append(lines[index])
                index += 1
            blocks.append((start + 1, "\n".join(body)))
        index += 1
    return blocks


def check_doctests(path: Path) -> list[str]:
    """Run every ``>>>`` example in the file; return failures as strings."""
    errors = []
    runner = doctest.DocTestRunner(verbose=False, optionflags=doctest.ELLIPSIS)
    parser = doctest.DocTestParser()
    for line_number, body in fenced_blocks(path.read_text()):
        if ">>>" not in body:
            continue
        name = f"{path.relative_to(REPO_ROOT)}:{line_number}"
        try:
            test = parser.get_doctest(body, {"__name__": "__docs__"}, name, str(path), line_number)
        except ValueError as error:
            errors.append(f"{name}: unparsable doctest block ({error})")
            continue
        result = runner.run(test, clear_globs=True)
        if result.failed:
            errors.append(f"{name}: {result.failed} of {result.attempted} example(s) failed")
    return errors


# ------------------------------------------------------------ CLI help blocks
def cli_help(subcommand: str) -> str:
    """The live ``--help`` text of one ``lightor`` subcommand."""
    from repro.cli import build_parser

    parser = build_parser()
    for action in parser._subparsers._group_actions:  # noqa: SLF001 - argparse has no public accessor
        if subcommand in action.choices:
            return action.choices[subcommand].format_help().rstrip()
    raise KeyError(f"no such subcommand: {subcommand!r}")


def sync_cli_blocks(path: Path, fix: bool) -> list[str]:
    """Compare (or with ``fix``, rewrite) the marked CLI help blocks."""
    lines = path.read_text().splitlines()
    errors = []
    output = []
    index = 0
    changed = False
    while index < len(lines):
        line = lines[index]
        output.append(line)
        match = _CLI_OPEN.search(line)
        if not match:
            index += 1
            continue
        subcommand = match.group(1)
        try:
            close_offset = next(
                offset for offset, later in enumerate(lines[index:]) if later.strip() == _CLI_CLOSE
            )
        except StopIteration:
            errors.append(f"{path.relative_to(REPO_ROOT)}:{index + 1}: unterminated cli block")
            index += 1
            continue
        block = lines[index + 1 : index + close_offset]
        expected = ["```text", *cli_help(subcommand).splitlines(), "```"]
        if block != expected:
            if fix:
                changed = True
            else:
                errors.append(
                    f"{path.relative_to(REPO_ROOT)}:{index + 1}: stale `{subcommand} --help` "
                    "block (run: PYTHONPATH=src python tools/check_docs.py --fix)"
                )
        output.extend(expected if fix else block)
        output.append(_CLI_CLOSE)
        index += close_offset + 1
    if fix and changed:
        path.write_text("\n".join(output) + "\n")
        print(f"regenerated CLI blocks in {path.relative_to(REPO_ROOT)}")
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fix", action="store_true", help="regenerate the CLI --help blocks in place"
    )
    args = parser.parse_args(argv)

    errors: list[str] = []
    for path in doc_files():
        errors.extend(check_links(path))
        errors.extend(sync_cli_blocks(path, fix=args.fix))
        errors.extend(check_doctests(path))
    if errors:
        print(f"{len(errors)} documentation problem(s):")
        for error in errors:
            print(f"  {error}")
        return 1
    print(f"docs OK: {len(doc_files())} file(s) — links, doctests and CLI blocks in sync")
    return 0


if __name__ == "__main__":
    sys.exit(main())
