#!/usr/bin/env python
"""Standalone lintor entry point — `repro lint` without PYTHONPATH setup.

Equivalent invocations:

    python tools/run_lintor.py --baseline tools/lintor_baseline.json
    PYTHONPATH=src python -m repro lint --baseline tools/lintor_baseline.json

Run from the repository root so finding paths match the committed baseline.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cli import main  # noqa: E402 - needs the src path first

if __name__ == "__main__":
    sys.exit(main(["lint", *sys.argv[1:]]))
