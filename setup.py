"""Legacy setup shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
so the package can be installed in editable mode in fully offline
environments where the ``wheel`` package (needed by PEP 660 editable builds
on older setuptools) is unavailable::

    pip install -e . --no-use-pep517
"""

from setuptools import setup

setup()
